"""IOS-like interactive console over an emulated node.

Every command is classified with a dotted **action** name and a **resource**
string (``device`` or ``device:object``) — the vocabulary the privilege
specification matches on. The console itself enforces nothing: the RMM
baseline executes results directly, while the twin network's reference
monitor authorises each command before letting the console run it.

The command catalog (:data:`CONSOLE_COMMANDS`) is declarative so that the
attack-surface metric (paper §5) can count "available commands on node n"
from the same source of truth the console dispatches on.
"""

import ipaddress
from dataclasses import dataclass

from repro.config.acl import Acl, AclEntry
from repro.config.model import (
    BgpConfig,
    BgpNeighbor,
    OspfConfig,
    OspfNetwork,
    StaticRoute,
    VlanConfig,
)
from repro.config.serializer import serialize_config
from repro.dataplane.forwarding import trace_flow
from repro.net.addressing import (
    interface_address,
    network_from_netmask,
    network_from_wildcard,
    parse_ip,
)
from repro.net.flow import Flow
from repro.net.topology import DeviceKind
from repro.util.errors import ConfigError

ROUTER, SWITCH, HOST = DeviceKind.ROUTER, DeviceKind.SWITCH, DeviceKind.HOST


@dataclass(frozen=True)
class CommandSpec:
    """One console command: how to match it, who has it, what it means."""

    mode: str  # exec | config | config-if | config-router | config-acl | config-vlan
    tokens: tuple  # matching prefix, e.g. ("show", "ip", "route")
    action: str
    kinds: tuple
    handler: str
    summary: str


CONSOLE_COMMANDS = (
    # -- exec mode ---------------------------------------------------------
    CommandSpec("exec", ("show", "running-config"), "view.config",
                (ROUTER, SWITCH, HOST), "_show_running_config",
                "display the full device configuration"),
    CommandSpec("exec", ("show", "startup-config"), "view.config",
                (ROUTER, SWITCH), "_show_startup_config",
                "display the saved configuration"),
    CommandSpec("exec", ("show", "ip", "route"), "view.route",
                (ROUTER, HOST), "_show_ip_route", "display the routing table"),
    CommandSpec("exec", ("show", "ip", "ospf", "neighbor"), "view.ospf",
                (ROUTER,), "_show_ospf_neighbors", "display OSPF adjacencies"),
    CommandSpec("exec", ("show", "ip", "bgp", "summary"), "view.bgp",
                (ROUTER,), "_show_bgp_summary", "display BGP sessions"),
    CommandSpec("exec", ("show", "vlan"), "view.vlan",
                (SWITCH,), "_show_vlan", "display VLANs and port membership"),
    CommandSpec("exec", ("show", "interfaces"), "view.interface",
                (ROUTER, SWITCH, HOST), "_show_interfaces",
                "display interface state"),
    CommandSpec("exec", ("show", "ip", "interface", "brief"), "view.interface",
                (ROUTER, HOST), "_show_ip_interface_brief",
                "one-line interface summary"),
    CommandSpec("exec", ("show", "version"), "view.system",
                (ROUTER, SWITCH, HOST), "_show_version",
                "software version and uptime"),
    CommandSpec("exec", ("show", "access-lists"), "view.acl",
                (ROUTER,), "_show_access_lists", "display ACLs"),
    CommandSpec("exec", ("exec",), "exec.shell",
                (HOST,), "_exec_shell",
                "run an arbitrary shell command (root agent)"),
    CommandSpec("exec", ("ls",), "file.list",
                (HOST,), "_ls", "list files on the host"),
    CommandSpec("exec", ("cat",), "file.read",
                (HOST,), "_cat", "read a file on the host"),
    CommandSpec("exec", ("ping",), "probe.ping",
                (ROUTER, HOST), "_ping", "send a test probe"),
    CommandSpec("exec", ("traceroute",), "probe.traceroute",
                (ROUTER, HOST), "_traceroute", "trace the forwarding path"),
    CommandSpec("exec", ("configure", "terminal"), "mode.transition",
                (ROUTER, SWITCH, HOST), "_enter_config",
                "enter configuration mode"),
    CommandSpec("exec", ("write", "memory"), "system.save",
                (ROUTER, SWITCH), "_write_memory", "persist the configuration"),
    CommandSpec("exec", ("reload",), "system.reboot",
                (ROUTER, SWITCH, HOST), "_reload", "reboot the device"),
    CommandSpec("exec", ("exit",), "mode.transition",
                (ROUTER, SWITCH, HOST), "_noop", "leave the session"),
    # -- global config mode ---------------------------------------------------
    CommandSpec("config", ("interface",), "mode.transition",
                (ROUTER, SWITCH, HOST), "_enter_interface",
                "select an interface"),
    CommandSpec("config", ("router", "ospf"), "mode.transition",
                (ROUTER,), "_enter_router_ospf", "configure OSPF"),
    CommandSpec("config", ("router", "bgp"), "mode.transition",
                (ROUTER,), "_enter_router_bgp", "configure BGP"),
    CommandSpec("config", ("ip", "access-list"), "mode.transition",
                (ROUTER,), "_enter_acl", "edit a named ACL"),
    CommandSpec("config", ("vlan",), "config.vlan",
                (SWITCH,), "_config_vlan", "declare a VLAN"),
    CommandSpec("config", ("no", "vlan"), "config.vlan",
                (SWITCH,), "_config_no_vlan", "remove a VLAN"),
    CommandSpec("config", ("ip", "route"), "config.static_route",
                (ROUTER,), "_config_ip_route", "add a static route"),
    CommandSpec("config", ("no", "ip", "route"), "config.static_route",
                (ROUTER,), "_config_no_ip_route", "remove a static route"),
    CommandSpec("config", ("ip", "default-gateway"), "config.default_gateway",
                (HOST, SWITCH), "_config_default_gateway",
                "set the default gateway"),
    CommandSpec("config", ("access-list",), "config.acl.entry",
                (ROUTER,), "_config_numbered_acl", "append a numbered ACL entry"),
    CommandSpec("config", ("hostname",), "config.hostname",
                (ROUTER, SWITCH, HOST), "_config_hostname", "rename the device"),
    CommandSpec("config", ("enable", "secret"), "config.credential",
                (ROUTER, SWITCH), "_config_enable_secret",
                "set the privileged-exec secret"),
    CommandSpec("config", ("end",), "mode.transition",
                (ROUTER, SWITCH, HOST), "_end_config", "return to exec mode"),
    CommandSpec("config", ("exit",), "mode.transition",
                (ROUTER, SWITCH, HOST), "_end_config", "return to exec mode"),
    # -- interface subconfig ------------------------------------------------------
    CommandSpec("config-if", ("ip", "address"), "config.interface.address",
                (ROUTER, HOST), "_if_ip_address", "assign an address"),
    CommandSpec("config-if", ("no", "ip", "address"), "config.interface.address",
                (ROUTER, HOST), "_if_no_ip_address", "remove the address"),
    CommandSpec("config-if", ("shutdown",), "config.interface.admin",
                (ROUTER, SWITCH, HOST), "_if_shutdown",
                "administratively disable"),
    CommandSpec("config-if", ("no", "shutdown"), "config.interface.admin",
                (ROUTER, SWITCH, HOST), "_if_no_shutdown", "enable"),
    CommandSpec("config-if", ("description",), "config.interface.description",
                (ROUTER, SWITCH, HOST), "_if_description", "set a description"),
    CommandSpec("config-if", ("ip", "ospf", "cost"), "config.ospf.cost",
                (ROUTER,), "_if_ospf_cost", "set the OSPF cost"),
    CommandSpec("config-if", ("ip", "access-group"),
                "config.interface.acl_binding",
                (ROUTER,), "_if_access_group", "bind an ACL"),
    CommandSpec("config-if", ("no", "ip", "access-group"),
                "config.interface.acl_binding",
                (ROUTER,), "_if_no_access_group", "unbind an ACL"),
    CommandSpec("config-if", ("switchport", "mode"),
                "config.interface.switchport",
                (SWITCH,), "_if_switchport_mode", "set the switchport mode"),
    CommandSpec("config-if", ("switchport", "access", "vlan"),
                "config.interface.switchport",
                (SWITCH,), "_if_access_vlan", "set the access VLAN"),
    CommandSpec("config-if", ("switchport", "trunk", "allowed", "vlan"),
                "config.interface.switchport",
                (SWITCH,), "_if_trunk_vlans", "set trunk VLANs"),
    CommandSpec("config-if", ("exit",), "mode.transition",
                (ROUTER, SWITCH, HOST), "_exit_subconfig", "leave the interface"),
    CommandSpec("config-if", ("end",), "mode.transition",
                (ROUTER, SWITCH, HOST), "_end_config", "return to exec mode"),
    # -- router ospf subconfig -------------------------------------------------------
    CommandSpec("config-router", ("network",), "config.ospf.network",
                (ROUTER,), "_ospf_network", "activate OSPF on a range"),
    CommandSpec("config-router", ("no", "network"), "config.ospf.network",
                (ROUTER,), "_ospf_no_network", "deactivate OSPF on a range"),
    CommandSpec("config-router", ("passive-interface",), "config.ospf.passive",
                (ROUTER,), "_ospf_passive", "suppress adjacencies"),
    CommandSpec("config-router", ("no", "passive-interface"),
                "config.ospf.passive",
                (ROUTER,), "_ospf_no_passive", "allow adjacencies"),
    CommandSpec("config-router", ("default-information", "originate"),
                "config.ospf.default_information",
                (ROUTER,), "_ospf_default_information", "originate 0.0.0.0/0"),
    CommandSpec("config-router", ("no", "default-information", "originate"),
                "config.ospf.default_information",
                (ROUTER,), "_ospf_no_default_information",
                "stop originating 0.0.0.0/0"),
    CommandSpec("config-router", ("exit",), "mode.transition",
                (ROUTER,), "_exit_subconfig", "leave OSPF configuration"),
    CommandSpec("config-router", ("end",), "mode.transition",
                (ROUTER,), "_end_config", "return to exec mode"),
    # -- router bgp subconfig --------------------------------------------------------
    CommandSpec("config-bgp", ("neighbor",), "config.bgp.neighbor",
                (ROUTER,), "_bgp_neighbor", "declare an eBGP peer"),
    CommandSpec("config-bgp", ("no", "neighbor"), "config.bgp.neighbor",
                (ROUTER,), "_bgp_no_neighbor", "remove an eBGP peer"),
    CommandSpec("config-bgp", ("network",), "config.bgp.network",
                (ROUTER,), "_bgp_network", "originate a prefix"),
    CommandSpec("config-bgp", ("no", "network"), "config.bgp.network",
                (ROUTER,), "_bgp_no_network", "stop originating a prefix"),
    CommandSpec("config-bgp", ("exit",), "mode.transition",
                (ROUTER,), "_exit_subconfig", "leave BGP configuration"),
    CommandSpec("config-bgp", ("end",), "mode.transition",
                (ROUTER,), "_end_config", "return to exec mode"),
    # -- named-ACL subconfig -------------------------------------------------------------
    CommandSpec("config-acl", ("permit",), "config.acl.entry",
                (ROUTER,), "_acl_entry", "append a permit entry"),
    CommandSpec("config-acl", ("deny",), "config.acl.entry",
                (ROUTER,), "_acl_entry", "append a deny entry"),
    CommandSpec("config-acl", ("no", "permit"), "config.acl.entry",
                (ROUTER,), "_acl_remove_entry", "remove a permit entry"),
    CommandSpec("config-acl", ("no", "deny"), "config.acl.entry",
                (ROUTER,), "_acl_remove_entry", "remove a deny entry"),
    CommandSpec("config-acl", ("exit",), "mode.transition",
                (ROUTER,), "_exit_subconfig", "leave the ACL"),
    CommandSpec("config-acl", ("end",), "mode.transition",
                (ROUTER,), "_end_config", "return to exec mode"),
    # -- vlan subconfig --------------------------------------------------------------------
    CommandSpec("config-vlan", ("name",), "config.vlan",
                (SWITCH,), "_vlan_name", "name the VLAN"),
    CommandSpec("config-vlan", ("exit",), "mode.transition",
                (SWITCH,), "_exit_subconfig", "leave the VLAN"),
    CommandSpec("config-vlan", ("end",), "mode.transition",
                (SWITCH,), "_end_config", "return to exec mode"),
)


def available_commands(kind):
    """All command specs a device of ``kind`` offers (attack-surface input)."""
    return [spec for spec in CONSOLE_COMMANDS if kind in spec.kinds]


@dataclass
class CommandResult:
    """Outcome of one console command."""

    device: str
    command: str
    output: str = ""
    ok: bool = True
    action: str = "invalid"
    resource: str = ""
    error: str = None
    mode_after: str = "exec"

    @property
    def denied(self):
        return not self.ok


class Console:
    """An interactive session on one emulated node."""

    def __init__(self, emnet, node):
        self._emnet = emnet
        self.node = node
        self._mode = "exec"
        self._context = None  # iface name / OspfConfig / Acl / VlanConfig
        self._current_tokens = ()

    @property
    def device(self):
        return self.node.name

    @property
    def mode(self):
        return self._mode

    @property
    def config(self):
        return self.node.config

    # -- dispatch --------------------------------------------------------------

    def classify(self, command):
        """(action, resource) a command *would* have, without executing it.

        The reference monitor authorises on this before execution.
        """
        spec, _tokens = self._match(command)
        if spec is None:
            return ("invalid", self.device)
        return (spec.action, self._resource_for(spec, command))

    def execute(self, command):
        """Run one command; never raises for user-level errors."""
        self.node.require_running()
        spec, tokens = self._match(command)
        if spec is None:
            return CommandResult(
                device=self.device,
                command=command,
                ok=False,
                error="% Invalid input detected",
                mode_after=self._mode,
            )
        result = CommandResult(
            device=self.device,
            command=command,
            action=spec.action,
            resource=self._resource_for(spec, command),
        )
        args = tokens[len(spec.tokens):]
        self._current_tokens = tokens
        try:
            output = getattr(self, spec.handler)(args)
            result.output = output or ""
        except ConfigError as exc:
            result.ok = False
            result.error = f"% {exc}"
        except (ValueError, ipaddress.AddressValueError) as exc:
            result.ok = False
            result.error = f"% {exc}"
        result.mode_after = self._mode
        return result

    def _match(self, command):
        tokens = tuple(command.split())
        if not tokens:
            return None, tokens
        best = None
        for spec in CONSOLE_COMMANDS:
            if spec.mode != self._mode:
                continue
            if self.node.kind not in spec.kinds:
                continue
            if tokens[: len(spec.tokens)] == spec.tokens:
                if best is None or len(spec.tokens) > len(best.tokens):
                    best = spec
        return best, tokens

    def _resource_for(self, spec, command):
        if spec.mode == "config-if":
            return f"{self.device}:{self._context}"
        if spec.mode == "config-acl":
            return f"{self.device}:acl:{self._context.name}"
        if spec.mode == "config" and spec.tokens[:1] == ("interface",):
            iface = command.split()[1] if len(command.split()) > 1 else "?"
            return f"{self.device}:{iface}"
        return self.device

    # -- exec handlers ---------------------------------------------------------

    def _noop(self, args):
        return ""

    def _show_running_config(self, args):
        return serialize_config(self.config)

    def _show_startup_config(self, args):
        return serialize_config(self.node.startup_config)

    def _show_ip_route(self, args):
        lines = ["Codes: C - connected, S - static, O - OSPF", ""]
        fib = self._emnet.dataplane().fib(self.device)
        for route in sorted(fib, key=lambda r: (str(r.prefix))):
            lines.append(str(route))
        return "\n".join(lines)

    def _show_ospf_neighbors(self, args):
        ospf = self._emnet.dataplane().ospf
        lines = ["Neighbor ID     Interface       Area"]
        for neighbor in ospf.neighbors_of(self.device):
            lines.append(
                f"{neighbor.remote_device:<15} "
                f"{neighbor.local_interface:<15} {neighbor.area}"
            )
        return "\n".join(lines)

    def _show_vlan(self, args):
        lines = ["VLAN Name        Ports"]
        ports_by_vlan = {}
        for iface in self.config.interfaces.values():
            if iface.switchport_mode == "access" and iface.access_vlan is not None:
                ports_by_vlan.setdefault(iface.access_vlan, []).append(iface.name)
        for vlan_id in sorted(set(self.config.vlans) | set(ports_by_vlan)):
            vlan = self.config.vlans.get(vlan_id)
            name = vlan.name if vlan is not None and vlan.name else f"VLAN{vlan_id:04d}"
            ports = ", ".join(sorted(ports_by_vlan.get(vlan_id, [])))
            lines.append(f"{vlan_id:<4} {name:<11} {ports}")
        return "\n".join(lines)

    def _show_interfaces(self, args):
        lines = []
        for iface in self.config.interfaces.values():
            status = "administratively down" if iface.shutdown else "up"
            address = str(iface.address) if iface.address else "unassigned"
            lines.append(f"{iface.name} is {status}, address is {address}")
            if iface.switchport_mode == "access":
                lines.append(f"  switchport access vlan {iface.access_vlan}")
            if iface.description:
                lines.append(f"  description: {iface.description}")
        return "\n".join(lines)

    def _show_ip_interface_brief(self, args):
        lines = ["Interface        IP-Address      Status"]
        for iface in self.config.interfaces.values():
            address = str(iface.address.ip) if iface.address else "unassigned"
            status = "administratively down" if iface.shutdown else "up"
            lines.append(f"{iface.name:<16} {address:<15} {status}")
        return "\n".join(lines)

    def _show_version(self, args):
        return (
            f"{self.node.image}\n"
            f"{self.device} uptime: boot count {self.node.boot_count}\n"
            f"image digest {self.node.image.digest[:16]}"
        )

    def _show_access_lists(self, args):
        lines = []
        for acl in self.config.acls.values():
            lines.append(f"Extended IP access list {acl.name}"
                         if acl.kind == "extended"
                         else f"Standard IP access list {acl.name}")
            for index, entry in enumerate(acl.entries, start=10):
                lines.append(f"    {index} {entry.to_text(acl.kind)}")
        return "\n".join(lines)

    def _exec_shell(self, args):
        # The RMM agents run as root (paper §2.1); the simulation accepts
        # any command and reports success — what matters to the experiments
        # is that the *capability* exists and is privilege-classified.
        if not args:
            raise ConfigError("command required")
        return f"(root) executed: {' '.join(args)}"

    def _ls(self, args):
        return "\n".join(sorted(self.node.files))

    def _cat(self, args):
        if not args:
            raise ConfigError("file path required")
        path = args[0]
        if path not in self.node.files:
            raise ConfigError(f"no such file: {path}")
        return self.node.files[path]

    def _source_ip(self):
        address = self.config.primary_address
        if address is None:
            raise ConfigError(f"{self.device} has no source address")
        return address.ip

    def _probe(self, args, protocol="icmp"):
        if not args:
            raise ConfigError("destination address required")
        dst = parse_ip(args[0])
        flow = Flow(src_ip=self._source_ip(), dst_ip=dst, protocol=protocol)
        return trace_flow(self._emnet.dataplane(), flow, start_device=self.device)

    def _ping(self, args):
        trace = self._probe(args)
        if trace.success:
            return "!!!!!\nSuccess rate is 100 percent (5/5)"
        return (
            f".....\nSuccess rate is 0 percent (0/5) "
            f"[{trace.disposition.value} at {trace.last_device}]"
        )

    def _traceroute(self, args):
        trace = self._probe(args)
        lines = [
            f"{index}  {hop.device}" for index, hop in enumerate(trace.hops, 1)
        ]
        if not trace.success:
            lines.append(f"*  *  *  ({trace.disposition.value})")
        return "\n".join(lines)

    def _enter_config(self, args):
        self._mode = "config"
        return "Enter configuration commands, one per line."

    def _write_memory(self, args):
        self.node.save_config()
        return "Building configuration...\n[OK]"

    def _reload(self, args):
        # IOS semantics: a reload discards unsaved running-config changes
        # and boots from the startup config.
        self._emnet.reload_node(self.device)
        return "Reload requested. System restarted."

    # -- global config handlers ---------------------------------------------------

    def _enter_interface(self, args):
        if not args:
            raise ConfigError("interface name required")
        name = args[0]
        self.config.interface(name, create=True)
        self._mode = "config-if"
        self._context = name
        return ""

    def _enter_router_ospf(self, args):
        process_id = int(args[0]) if args else 1
        if self.config.ospf is None:
            self.config.ospf = OspfConfig(process_id=process_id)
            self._emnet.mark_dirty()
        self._mode = "config-router"
        self._context = self.config.ospf
        return ""

    def _enter_router_bgp(self, args):
        if not args:
            raise ConfigError("AS number required")
        asn = int(args[0])
        if self.config.bgp is None:
            self.config.bgp = BgpConfig(asn=asn)
            self._emnet.mark_dirty()
        elif self.config.bgp.asn != asn:
            raise ConfigError(
                f"BGP is already running as AS {self.config.bgp.asn}"
            )
        self._mode = "config-bgp"
        self._context = self.config.bgp
        return ""

    def _enter_acl(self, args):
        if len(args) < 2 or args[0] not in ("standard", "extended"):
            raise ConfigError("usage: ip access-list standard|extended <name>")
        kind, name = args[0], args[1]
        acl = self.config.acls.get(name)
        if acl is None:
            acl = self.config.add_acl(Acl(name=name, kind=kind))
            self._emnet.mark_dirty()
        self._mode = "config-acl"
        self._context = acl
        return ""

    def _config_vlan(self, args):
        if not args:
            raise ConfigError("vlan id required")
        vlan_id = int(args[0])
        vlan = self.config.vlans.setdefault(vlan_id, VlanConfig(vlan_id))
        self._mode = "config-vlan"
        self._context = vlan
        self._emnet.mark_dirty()
        return ""

    def _config_no_vlan(self, args):
        if not args:
            raise ConfigError("vlan id required")
        self.config.vlans.pop(int(args[0]), None)
        self._emnet.mark_dirty()
        return ""

    def _config_ip_route(self, args):
        if len(args) < 3:
            raise ConfigError("usage: ip route <prefix> <mask> <next-hop>")
        route = StaticRoute(
            prefix=network_from_netmask(args[0], args[1]),
            next_hop=parse_ip(args[2]),
            distance=int(args[3]) if len(args) > 3 else 1,
        )
        if route not in self.config.static_routes:
            self.config.static_routes.append(route)
            self._emnet.mark_dirty()
        return ""

    def _config_no_ip_route(self, args):
        if len(args) < 3:
            raise ConfigError("usage: no ip route <prefix> <mask> <next-hop>")
        prefix = network_from_netmask(args[0], args[1])
        next_hop = parse_ip(args[2])
        before = len(self.config.static_routes)
        self.config.static_routes = [
            route
            for route in self.config.static_routes
            if not (route.prefix == prefix and route.next_hop == next_hop)
        ]
        if len(self.config.static_routes) != before:
            self._emnet.mark_dirty()
        return ""

    def _config_default_gateway(self, args):
        if not args:
            raise ConfigError("gateway address required")
        self.config.default_gateway = parse_ip(args[0])
        self._emnet.mark_dirty()
        return ""

    def _config_numbered_acl(self, args):
        if len(args) < 2:
            raise ConfigError("usage: access-list <number> <entry>")
        number = args[0]
        value = int(number)
        kind = "standard" if 1 <= value <= 99 else "extended"
        acl = self.config.acls.get(number)
        if acl is None:
            acl = self.config.add_acl(Acl(name=number, kind=kind))
        acl.entries.append(AclEntry.parse(" ".join(args[1:]), kind=kind))
        self._emnet.mark_dirty()
        return ""

    def _config_hostname(self, args):
        if not args:
            raise ConfigError("hostname required")
        self.config.hostname = args[0]
        self._emnet.mark_dirty()
        return ""

    def _config_enable_secret(self, args):
        if not args:
            raise ConfigError("secret required")
        secret = args[1] if len(args) == 2 and args[0].isdigit() else " ".join(args)
        self.config.enable_secret = secret
        self._emnet.mark_dirty()
        return ""

    def _end_config(self, args):
        self._mode = "exec"
        self._context = None
        return ""

    def _exit_subconfig(self, args):
        self._mode = "config"
        self._context = None
        return ""

    # -- interface handlers -----------------------------------------------------

    @property
    def _iface(self):
        return self.config.interface(self._context)

    def _if_ip_address(self, args):
        if len(args) < 2:
            raise ConfigError("usage: ip address <addr> <mask>")
        self._iface.address = interface_address(args[0], args[1])
        self._emnet.mark_dirty()
        return ""

    def _if_no_ip_address(self, args):
        self._iface.address = None
        self._emnet.mark_dirty()
        return ""

    def _if_shutdown(self, args):
        self._iface.shutdown = True
        self._emnet.mark_dirty()
        return ""

    def _if_no_shutdown(self, args):
        self._iface.shutdown = False
        self._emnet.mark_dirty()
        return ""

    def _if_description(self, args):
        self._iface.description = " ".join(args)
        return ""

    def _if_ospf_cost(self, args):
        if not args:
            raise ConfigError("cost required")
        self._iface.ospf_cost = int(args[0])
        self._emnet.mark_dirty()
        return ""

    def _if_access_group(self, args):
        if len(args) < 2 or args[1] not in ("in", "out"):
            raise ConfigError("usage: ip access-group <name> in|out")
        if args[1] == "in":
            self._iface.access_group_in = args[0]
        else:
            self._iface.access_group_out = args[0]
        self._emnet.mark_dirty()
        return ""

    def _if_no_access_group(self, args):
        direction = args[-1] if args else "in"
        if direction == "out":
            self._iface.access_group_out = None
        else:
            self._iface.access_group_in = None
        self._emnet.mark_dirty()
        return ""

    def _if_switchport_mode(self, args):
        if not args or args[0] not in ("access", "trunk"):
            raise ConfigError("usage: switchport mode access|trunk")
        self._iface.switchport_mode = args[0]
        self._emnet.mark_dirty()
        return ""

    def _if_access_vlan(self, args):
        if not args:
            raise ConfigError("vlan id required")
        self._iface.access_vlan = int(args[0])
        if self._iface.switchport_mode is None:
            self._iface.switchport_mode = "access"
        self._emnet.mark_dirty()
        return ""

    def _if_trunk_vlans(self, args):
        if not args:
            raise ConfigError("vlan list required")
        self._iface.trunk_vlans = tuple(int(v) for v in args[0].split(","))
        if self._iface.switchport_mode is None:
            self._iface.switchport_mode = "trunk"
        self._emnet.mark_dirty()
        return ""

    # -- router ospf handlers ---------------------------------------------------------

    def _ospf_network(self, args):
        if len(args) != 4 or args[2] != "area":
            raise ConfigError("usage: network <addr> <wildcard> area <n>")
        statement = OspfNetwork(
            prefix=network_from_wildcard(args[0], args[1]), area=int(args[3])
        )
        if statement not in self._context.networks:
            self._context.networks.append(statement)
            self._emnet.mark_dirty()
        return ""

    def _ospf_no_network(self, args):
        if len(args) != 4 or args[2] != "area":
            raise ConfigError("usage: no network <addr> <wildcard> area <n>")
        statement = OspfNetwork(
            prefix=network_from_wildcard(args[0], args[1]), area=int(args[3])
        )
        if statement in self._context.networks:
            self._context.networks.remove(statement)
            self._emnet.mark_dirty()
        return ""

    def _ospf_passive(self, args):
        if not args:
            raise ConfigError("interface name required")
        self._context.passive_interfaces.add(args[0])
        self._emnet.mark_dirty()
        return ""

    def _ospf_no_passive(self, args):
        if not args:
            raise ConfigError("interface name required")
        self._context.passive_interfaces.discard(args[0])
        self._emnet.mark_dirty()
        return ""

    def _ospf_default_information(self, args):
        self._context.default_information_originate = True
        self._emnet.mark_dirty()
        return ""

    def _ospf_no_default_information(self, args):
        self._context.default_information_originate = False
        self._emnet.mark_dirty()
        return ""

    # -- router bgp handlers ----------------------------------------------------------

    def _bgp_neighbor(self, args):
        if len(args) != 3 or args[1] != "remote-as":
            raise ConfigError("usage: neighbor <ip> remote-as <asn>")
        statement = BgpNeighbor(
            address=parse_ip(args[0]), remote_as=int(args[2])
        )
        if statement not in self._context.neighbors:
            self._context.neighbors.append(statement)
            self._emnet.mark_dirty()
        return ""

    def _bgp_no_neighbor(self, args):
        if not args:
            raise ConfigError("neighbor address required")
        address = parse_ip(args[0])
        before = len(self._context.neighbors)
        self._context.neighbors = [
            n for n in self._context.neighbors if n.address != address
        ]
        if len(self._context.neighbors) != before:
            self._emnet.mark_dirty()
        return ""

    def _bgp_network(self, args):
        if len(args) != 3 or args[1] != "mask":
            raise ConfigError("usage: network <prefix> mask <netmask>")
        prefix = network_from_netmask(args[0], args[2])
        if prefix not in self._context.networks:
            self._context.networks.append(prefix)
            self._emnet.mark_dirty()
        return ""

    def _bgp_no_network(self, args):
        if len(args) != 3 or args[1] != "mask":
            raise ConfigError("usage: no network <prefix> mask <netmask>")
        prefix = network_from_netmask(args[0], args[2])
        if prefix in self._context.networks:
            self._context.networks.remove(prefix)
            self._emnet.mark_dirty()
        return ""

    def _show_bgp_summary(self, args):
        bgp_state = self._emnet.dataplane().bgp
        if self.config.bgp is None:
            return "% BGP not active"
        lines = [f"BGP router AS {self.config.bgp.asn}",
                 "Neighbor        AS      State"]
        established = {
            str(s.remote_address): s
            for s in (bgp_state.sessions_of(self.device) if bgp_state else ())
        }
        for neighbor in self.config.bgp.neighbors:
            state = (
                "Established"
                if str(neighbor.address) in established
                else "Active"
            )
            lines.append(
                f"{str(neighbor.address):<15} {neighbor.remote_as:<7} {state}"
            )
        return "\n".join(lines)

    # -- ACL handlers --------------------------------------------------------------------

    def _acl_entry(self, args):
        # The spec consumed only the leading permit/deny token; the full
        # entry text is the whole command line.
        entry = AclEntry.parse(
            " ".join(self._current_tokens), kind=self._context.kind
        )
        self._context.entries.append(entry)
        self._emnet.mark_dirty()
        return ""

    def _acl_remove_entry(self, args):
        # "no permit ..." / "no deny ...": drop the matching entry if present.
        entry = AclEntry.parse(
            " ".join(self._current_tokens[1:]), kind=self._context.kind
        )
        if entry in self._context.entries:
            self._context.entries.remove(entry)
            self._emnet.mark_dirty()
        return ""

    # -- vlan handlers ----------------------------------------------------------------------

    def _vlan_name(self, args):
        if not args:
            raise ConfigError("name required")
        self._context.name = args[0]
        return ""
