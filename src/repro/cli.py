"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``show``      — network summary and device inventory;
* ``policies``  — mine and list the network's implied policies;
* ``issues``    — list the reproducible issues for a scenario network;
* ``resolve``   — inject an issue and resolve it via a workflow;
* ``snapshot``  — dump a network to an editable snapshot directory;
* ``report``    — regenerate the full paper-vs-measured markdown report;
* ``bench``     — run the data-plane perf suite, write ``BENCH_dataplane.json``;
* ``obs report`` — resolve one issue with observability enabled and render
  the span trees, metrics, and audit/trace correlation (optionally as JSON);
* ``chaos``     — run a seeded fault-injection campaign over the scenario
  networks and report the push-atomicity invariant per scenario
  (``--matrix`` runs every campaign across several seeds);
* ``audit export`` / ``audit verify`` — dump a ticket's tamper-evident
  audit chains (single or replicated) to JSON, then re-walk the HMAC
  links offline and quorum-vote the replicas' content.

``--network`` accepts a scenario name (``enterprise`` / ``university``) or
a path to a snapshot directory written by ``snapshot`` /
:func:`repro.scenarios.io.save_network`.
"""

import argparse
import sys
from pathlib import Path

from repro.msp.workflows import CurrentWorkflow, HeimdallWorkflow
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.io import load_network, save_network
from repro.scenarios.issues import standard_issues
from repro.scenarios.university import build_university_network
from repro.util.errors import ReproError

_SCENARIOS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}


def _resolve_network(spec):
    """A Network from a scenario name or snapshot directory path."""
    if spec in _SCENARIOS:
        return _SCENARIOS[spec]()
    path = Path(spec)
    if path.is_dir():
        return load_network(path)
    raise ReproError(
        f"unknown network {spec!r}: expected "
        f"{'/'.join(_SCENARIOS)} or a snapshot directory"
    )


def _add_network_argument(parser):
    parser.add_argument(
        "--network", default="enterprise",
        help="scenario name (enterprise/university) or snapshot directory",
    )


# -- commands -----------------------------------------------------------------


def cmd_show(args, out):
    network = _resolve_network(args.network)
    summary = network.summary()
    out.write(f"network: {network.name}\n")
    for key in ("routers", "switches", "hosts", "links", "config_lines"):
        out.write(f"  {key}: {summary[key]}\n")
    out.write("devices:\n")
    for device in network.topology.devices():
        neighbors = ", ".join(network.topology.neighbors(device.name))
        out.write(f"  {device.name:12} {device.kind.value:7} -> {neighbors}\n")
    return 0


def cmd_policies(args, out):
    network = _resolve_network(args.network)
    policies = mine_policies(
        network,
        include_waypoints=args.waypoints,
        max_failures=1 if args.robust else 0,
    )
    out.write(f"{len(policies)} policies mined from {network.name}\n")
    for policy in policies:
        out.write(f"  [{policy.kind:12}] {policy.policy_id}\n")
    return 0


def cmd_issues(args, out):
    network = _resolve_network(args.network)
    if network.name not in _SCENARIOS:
        out.write("standard issues exist only for the scenario networks\n")
        return 1
    for issue in standard_issues(network.name).values():
        out.write(f"{issue.issue_id:6} [{issue.complexity:8}] {issue.title}\n")
        out.write(f"       {issue.description}\n")
    return 0


def cmd_resolve(args, out):
    network = _resolve_network(args.network)
    if network.name not in _SCENARIOS:
        out.write("resolve requires a scenario network\n")
        return 1
    issues = standard_issues(network.name)
    if args.issue not in issues:
        out.write(f"unknown issue {args.issue!r}; choose from "
                  f"{', '.join(issues)}\n")
        return 1
    issue = issues[args.issue]
    policies = mine_policies(network)
    issue.inject(network)
    out.write(f"injected: {issue.title}\n")

    if args.workflow == "current":
        workflow = CurrentWorkflow()
    else:
        workflow = HeimdallWorkflow(policies=policies)
    result = workflow.resolve(network, issue)

    out.write(f"workflow: {result.workflow}\n")
    out.write(f"resolved: {result.resolved}\n")
    out.write(f"simulated duration: {result.duration_s:.1f}s\n")
    for step, seconds in result.breakdown.items():
        out.write(f"  {step}: {seconds:.1f}s\n")
    if result.detail is not None:
        out.write(f"changes imported: {len(result.detail.changes)}\n")
        impact = result.detail.decision.impact
        if impact is not None:
            out.write(f"impact: {impact.summary()}\n")
    return 0 if result.resolved else 1


def cmd_snapshot(args, out):
    network = _resolve_network(args.network)
    save_network(network, args.directory)
    out.write(f"snapshot of {network.name} written to {args.directory}\n")
    return 0


def cmd_bench(args, out):
    from repro.experiments.bench_dataplane import run_benchmarks, write_report

    if args.check:
        from repro.experiments.bench_check import run_check

        return run_check(repeats=args.repeats if args.repeats != 7 else 3,
                         out=out)
    if args.concurrent:
        return _bench_concurrent(args, out)
    if args.rollout:
        return _bench_rollout(args, out)
    if args.scale:
        return _bench_scale(args, out)
    if args.tenants:
        return _bench_tenants(args, out)
    args.output = args.output or "BENCH_dataplane.json"
    report = run_benchmarks(networks=args.networks, repeats=args.repeats)
    write_report(report, args.output)
    for name, rows in report["networks"].items():
        for issue_id, verify in rows["verify"].items():
            out.write(
                f"{name}/{issue_id}: cold {verify['cold_ms']}ms -> "
                f"incremental {verify['incremental_ms']}ms "
                f"({verify['speedup']}x)\n"
            )
    if "acceptance" in report:
        gate = report["acceptance"]
        out.write(
            f"university verify speedup: "
            f"{gate['university_single_device_verify_speedup']}x "
            f"(target {gate['target']}x)\n"
        )
    out.write(f"benchmark report written to {args.output}\n")
    return 0


def _bench_scale(args, out):
    """Generated mega-network scale benchmark; writes BENCH_scale.json."""
    from repro.experiments.bench_scale import (
        run_scale_benchmark,
        write_report,
    )

    report = run_scale_benchmark(
        size=args.scale, shape=args.shape, seed=args.seed,
        repeats=args.repeats, workers=args.workers,
    )
    output = args.output or "BENCH_scale.json"
    write_report(report, output)
    generated = report["generated"]
    compile_ = report["compile"]
    out.write(
        f"{generated['shape']} x{generated['devices']} devices "
        f"({generated['routers']} routers, "
        f"{report['sharding']['shards']} shards): "
        f"single {compile_['single_ms']}ms -> "
        f"sharded {compile_['sharded_ms']}ms "
        f"({compile_['sharded_speedup']}x), "
        f"incremental {compile_['incremental_ms']}ms\n"
    )
    out.write(
        f"verify: {report['verify']['ms']}ms for "
        f"{generated['policies']} policies "
        f"({report['verify']['policies_per_s']} policies/s)\n"
    )
    gate = report["acceptance"]
    state = "pass" if gate["pass"] else "FAIL"
    out.write(
        f"sharded cold speedup {gate['sharded_cold_speedup']}x "
        f"(target {gate['target']}x at N>=500): {state}\n"
    )
    out.write(f"scale benchmark report written to {output}\n")
    return 0 if gate["pass"] else 1


def _bench_rollout(args, out):
    """Monolithic vs staged canary push timings; writes BENCH_rollout.json."""
    from repro.experiments.bench_rollout import (
        run_rollout_benchmarks,
        write_report,
    )

    output = args.output or "BENCH_rollout.json"
    networks = [n for n in (args.networks or []) if n == "enterprise"] or None
    report = run_rollout_benchmarks(networks=networks, repeats=args.repeats)
    for name, rows in report["networks"].items():
        push = rows["push"]
        out.write(
            f"{name}: monolithic {push['monolithic_ms']}ms -> canary "
            f"{push['canary_incremental_ms']}ms over {rows['waves']} waves "
            f"({rows['probes_per_push']} probes, "
            f"{push['probe_overhead_x']}x overhead)\n"
        )
        out.write(
            f"  probe compile: cold {push['canary_cold_ms']}ms -> "
            f"incremental {push['canary_incremental_ms']}ms "
            f"({push['probe_speedup']}x)\n"
        )
    write_report(report, output)
    out.write(f"rollout benchmark report written to {output}\n")
    return 0


def _bench_tenants(args, out):
    """Front-door vs direct multi-org throughput; exit 0 iff gate passes."""
    from repro.experiments.bench_tenants import (
        run_tenants_bench,
        write_report,
    )

    network = (args.networks or ["university"])[0]
    output = args.output or "BENCH_tenants.json"
    report = run_tenants_bench(
        sessions=args.tenants, orgs=args.orgs, network=network,
        seed=args.seed,
    )
    write_report(report, output)
    out.write(
        f"{network}: {report['sessions']} sessions over {report['orgs']} "
        f"orgs — front door {report['frontdoor']['elapsed_s']}s "
        f"({report['frontdoor']['throughput_per_s']}/s), direct "
        f"{report['direct']['elapsed_s']}s "
        f"({report['direct']['throughput_per_s']}/s)\n"
    )
    flood = report["flood"]
    out.write(
        f"  flood: shed={'yes' if flood['shed'] else 'NO'} "
        f"retry_after={flood['retry_after_s']}s\n"
    )
    for invariant, held in sorted(report["invariants"].items()):
        out.write(f"  [{'ok' if held else 'FAIL':4}] {invariant}\n")
    gate = report["acceptance"]
    state = "pass" if gate["pass"] else "FAIL"
    out.write(
        f"isolation overhead {gate['overhead_ratio']}x "
        f"(target <= {gate['target']}x): {state}\n"
    )
    out.write(f"tenants benchmark report written to {output}\n")
    return 0 if report["ok"] else 1


def _bench_concurrent(args, out):
    """N threaded sessions against one production; exit 0 iff no torn state."""
    from repro.experiments.bench_concurrent import (
        run_concurrent_bench,
        write_report,
    )

    networks = args.networks or ["enterprise"]
    output = args.output or "BENCH_concurrent.json"
    ok = True
    for name in networks:
        report = run_concurrent_bench(
            sessions=args.concurrent, network=name, seed=args.seed
        )
        ok = ok and report["ok"]
        out.write(
            f"{name}: {report['sessions']} concurrent sessions in "
            f"{report['elapsed_s']}s ({report['throughput_per_s']}/s)\n"
        )
        out.write(
            "  outcomes: "
            + ", ".join(
                f"{status}={count}"
                for status, count in sorted(report["outcomes"].items())
            )
            + "\n"
        )
        for issue_id, row in sorted(report["per_issue"].items()):
            out.write(
                f"  {issue_id}: {row['imported']}/{row['sessions']} "
                f"sessions imported\n"
            )
        for invariant, held in sorted(report["invariants"].items()):
            out.write(
                f"  [{'ok' if held else 'FAIL':4}] {invariant}\n"
            )
    write_report(report, output)
    out.write(f"stress report written to {output}\n")
    return 0 if ok else 1


def cmd_obs_report(args, out):
    """Run one ticket end-to-end with observability on; report what it saw."""
    import json as json_module

    from repro import obs
    from repro.core.heimdall import Heimdall

    network = _resolve_network(args.network)
    if network.name not in _SCENARIOS:
        out.write("obs report requires a scenario network\n")
        return 1
    issues = standard_issues(network.name)
    if args.issue not in issues:
        out.write(f"unknown issue {args.issue!r}; choose from "
                  f"{', '.join(issues)}\n")
        return 1
    issue = issues[args.issue]
    policies = mine_policies(network)
    issue.inject(network)

    obs.reset()
    obs.enable()
    try:
        heimdall = Heimdall(network, policies=policies)
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
    finally:
        obs.disable()

    tracer = obs.tracer()
    correlated = sum(
        1 for record in heimdall.audit.records
        if record.trace_id and tracer.find_trace(record.trace_id) is not None
    )
    audit_summary = {
        "records": len(heimdall.audit),
        "correlated": correlated,
        "chain_intact": heimdall.audit.verify(),
    }

    if args.json:
        payload = obs.report_dict()
        payload["scenario"] = {
            "network": network.name,
            "issue": issue.issue_id,
            "resolved": outcome.resolved,
            "approved": outcome.approved,
        }
        payload["audit"] = audit_summary
        json_module.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(
            f"scenario: {network.name}/{issue.issue_id} "
            f"resolved={outcome.resolved} approved={outcome.approved}\n"
        )
        obs.render_report(out)
        out.write(
            f"audit: {audit_summary['records']} records, "
            f"{correlated} with resolvable trace ids, chain "
            f"{'intact' if audit_summary['chain_intact'] else 'BROKEN'}\n"
        )
    if args.output:
        payload = obs.report_dict()
        payload["scenario"] = {
            "network": network.name,
            "issue": issue.issue_id,
            "resolved": outcome.resolved,
            "approved": outcome.approved,
        }
        payload["audit"] = audit_summary
        with open(args.output, "w") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.write(f"observability report written to {args.output}\n")
    return 0


def cmd_audit(args, out):
    """Offline audit-chain tooling: export chains, verify them later."""
    if args.audit_command == "export":
        return _audit_export(args, out)
    return _audit_verify(args, out)


def _audit_export(args, out):
    """Resolve one ticket, then dump its audit chains to JSON."""
    import json as json_module

    from repro.core.enforcer.audit import export_chains
    from repro.core.heimdall import Heimdall

    network = _resolve_network(args.network)
    if network.name not in _SCENARIOS:
        out.write("audit export requires a scenario network\n")
        return 1
    issues = standard_issues(network.name)
    if args.issue not in issues:
        out.write(f"unknown issue {args.issue!r}; choose from "
                  f"{', '.join(issues)}\n")
        return 1
    issue = issues[args.issue]
    policies = mine_policies(network)
    issue.inject(network)

    heimdall = Heimdall(
        network, policies=policies, audit_replicas=args.replicas
    )
    session = heimdall.open_ticket(issue)
    session.run_fix_script(issue.fix_script)
    session.submit()

    payload = export_chains(heimdall.audit)
    if args.tamper is not None:
        # Demo/test hook: corrupt one exported replica's newest record
        # *without* its key, exactly the attacker model `audit verify`
        # must catch.
        records = payload["replicas"][args.tamper]["records"]
        if records:
            records[-1]["outcome"] = (
                records[-1]["outcome"] + " [tampered]"
            ).strip()
    with open(args.output, "w") as handle:
        json_module.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    chains = payload["replicas"]
    out.write(
        f"exported {len(chains)} chain{'s' if len(chains) != 1 else ''} "
        f"({sum(len(c['records']) for c in chains)} records, quorum "
        f"{payload['quorum']}) to {args.output}\n"
    )
    return 0


def _audit_verify(args, out):
    """Re-walk exported chains offline; exit 0 iff fully intact."""
    import json as json_module

    from repro.core.enforcer.audit import verify_export

    with open(args.chains) as handle:
        payload = json_module.load(handle)
    result = verify_export(payload)
    for replica in result["replicas"]:
        if replica["intact"]:
            out.write(
                f"  [ok    ] {replica['key_id']}: "
                f"{replica['records']} records, chain intact\n"
            )
        else:
            out.write(
                f"  [BROKEN] {replica['key_id']}: first broken MAC link "
                f"at record {replica['first_broken']} "
                f"of {replica['records']}\n"
            )
    out.write(
        f"quorum verdict: {result['status']} "
        f"({result['agreeing']}/{len(result['replicas'])} chains agree, "
        f"quorum {result['quorum']})\n"
    )
    return 0 if result["status"] == "intact" else 1


def cmd_chaos(args, out):
    """Run one seeded chaos campaign; exit 0 iff every invariant held."""
    import json as json_module

    from repro.faults.chaos import campaign_names, campaigns, run_campaign

    if args.list:
        for name in campaign_names():
            out.write(f"{name}\n")
        return 0
    if args.matrix:
        return _chaos_matrix(args, out, campaign_names, run_campaign)
    if args.list_campaigns:
        for name, scenarios in sorted(campaigns().items()):
            out.write(f"{name} ({len(scenarios)} scenarios)\n")
            for scenario in scenarios:
                staged = " [staged]" if scenario.rollout is not None else ""
                out.write(
                    f"  {scenario.network}/{scenario.issue} "
                    f"{scenario.label}{staged}: expect "
                    f"{scenario.expect or 'any'}\n"
                )
        return 0

    report = run_campaign(args.campaign, seed=args.seed)
    if args.json:
        json_module.dump(report.to_dict(), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        out.write(
            f"campaign: {report.campaign} (seed {report.seed})\n"
        )
        for scenario in report.scenarios:
            flags = []
            if scenario.crashed:
                flags.append("crashed")
            if scenario.resumed:
                flags.append("resumed")
            if scenario.resolved:
                flags.append("resolved")
            out.write(
                f"  [{'ok' if scenario.ok else 'FAIL':4}] "
                f"{scenario.network}/{scenario.issue} {scenario.label}: "
                f"{scenario.outcome}"
                f"{' (' + ', '.join(flags) + ')' if flags else ''}\n"
            )
            out.write(
                f"         state invariant: "
                f"{'held' if scenario.state_invariant else 'VIOLATED'}; "
                f"audit chain: "
                f"{'intact' if scenario.audit_intact else 'BROKEN'}"
            )
            if scenario.faults_fired:
                shown = scenario.faults_fired[:6]
                more = len(scenario.faults_fired) - len(shown)
                out.write(f"; faults: {', '.join(shown)}"
                          + (f" (+{more} more)" if more else ""))
            if scenario.rollback_reason:
                out.write(f"; reason: {scenario.rollback_reason}")
            if scenario.error:
                out.write(f"; error: {scenario.error}")
            out.write("\n")
        out.write("metrics:\n")
        for name, value in sorted(report.metrics.items()):
            out.write(f"  {name}: {value}\n")
        out.write(
            f"campaign {'PASSED' if report.ok else 'FAILED'}: "
            f"{sum(1 for s in report.scenarios if s.ok)}/"
            f"{len(report.scenarios)} scenarios held the push-atomicity "
            f"invariant\n"
        )
    if args.output:
        with open(args.output, "w") as handle:
            json_module.dump(report.to_dict(), handle, indent=2,
                             sort_keys=True)
            handle.write("\n")
        out.write(f"chaos report written to {args.output}\n")
    return 0 if report.ok else 1


def _chaos_matrix(args, out, campaign_names, run_campaign):
    """Every registered campaign across ``--seeds`` consecutive seeds."""
    names = campaign_names()
    failures = []
    for name in names:
        for offset in range(args.seeds):
            seed = args.seed + offset
            report = run_campaign(name, seed=seed)
            held = sum(1 for s in report.scenarios if s.ok)
            out.write(
                f"[{'ok' if report.ok else 'FAIL':4}] {name} seed {seed}: "
                f"{held}/{len(report.scenarios)} scenarios ok\n"
            )
            if not report.ok:
                failures.append(f"{name}@{seed}")
    if failures:
        out.write(f"matrix FAILED: {', '.join(failures)}\n")
        return 1
    out.write(
        f"matrix PASSED: {len(names)} campaigns x {args.seeds} seeds\n"
    )
    return 0


def cmd_report(args, out):
    from repro.experiments.report import render_report

    if args.output:
        with open(args.output, "w") as handle:
            render_report(handle)
        out.write(f"report written to {args.output}\n")
    else:
        render_report(out)
    return 0


# -- entry point ------------------------------------------------------------------


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heimdall reproduction (HotNets'21) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="network summary")
    _add_network_argument(show)
    show.set_defaults(func=cmd_show)

    policies = sub.add_parser("policies", help="mine network policies")
    _add_network_argument(policies)
    policies.add_argument("--waypoints", action="store_true",
                          help="also mine waypoint policies")
    policies.add_argument("--robust", action="store_true",
                          help="keep only 1-failure-robust policies")
    policies.set_defaults(func=cmd_policies)

    issues = sub.add_parser("issues", help="list reproducible issues")
    _add_network_argument(issues)
    issues.set_defaults(func=cmd_issues)

    resolve = sub.add_parser("resolve", help="inject and resolve an issue")
    _add_network_argument(resolve)
    resolve.add_argument("--issue", required=True,
                         help="issue id (ospf/isp/vlan)")
    resolve.add_argument("--workflow", choices=("current", "heimdall"),
                         default="heimdall")
    resolve.set_defaults(func=cmd_resolve)

    snapshot = sub.add_parser("snapshot", help="write a snapshot directory")
    _add_network_argument(snapshot)
    snapshot.add_argument("directory")
    snapshot.set_defaults(func=cmd_snapshot)

    report = sub.add_parser("report", help="full reproduction report")
    report.add_argument("-o", "--output", default=None)
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser(
        "bench", help="data-plane perf suite (writes BENCH_dataplane.json)"
    )
    bench.add_argument(
        "--network", action="append", dest="networks",
        choices=("enterprise", "university"),
        help="benchmark only this scenario (repeatable; default: all)",
    )
    bench.add_argument("--repeats", type=int, default=7)
    bench.add_argument(
        "--concurrent", type=int, default=0, metavar="N",
        help="run the concurrent-session stress benchmark with N threaded "
             "sessions instead of the perf suite",
    )
    bench.add_argument(
        "--rollout", action="store_true",
        help="run the staged-rollout push benchmark instead of the perf "
             "suite (writes BENCH_rollout.json)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="regression gate: re-run a short pass and fail if any "
             "speedup/overhead ratio regressed >20%% vs the committed "
             "BENCH_*.json reports",
    )
    bench.add_argument(
        "--scale", type=int, default=0, metavar="N",
        help="run the mega-network scale benchmark on a generated N-device "
             "topology instead of the perf suite (writes BENCH_scale.json)",
    )
    bench.add_argument(
        "--tenants", type=int, default=0, metavar="N",
        help="run the multi-tenant front-door benchmark with N sessions "
             "split over --orgs orgs instead of the perf suite (writes "
             "BENCH_tenants.json)",
    )
    bench.add_argument(
        "--orgs", type=int, default=3,
        help="tenant org count for --tenants (default: 3)",
    )
    bench.add_argument(
        "--shape", choices=("fat-tree", "campus", "hub-spoke"),
        default="fat-tree",
        help="generated topology shape for --scale (default: fat-tree)",
    )
    bench.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --scale sharding (default: CPU count)",
    )
    bench.add_argument(
        "--seed", type=int, default=7,
        help="rand seed for the concurrent stress, scale, and tenants "
             "benchmarks",
    )
    bench.add_argument(
        "-o", "--output", default=None,
        help="report path (default: BENCH_dataplane.json, "
             "BENCH_concurrent.json with --concurrent, "
             "BENCH_rollout.json with --rollout, "
             "BENCH_scale.json with --scale, or "
             "BENCH_tenants.json with --tenants)",
    )
    bench.set_defaults(func=cmd_bench)

    obs_parser = sub.add_parser(
        "obs", help="observability tooling (tracing + metrics)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="resolve one issue with observability on and report spans "
             "+ metrics + audit correlation",
    )
    _add_network_argument(obs_report)
    obs_report.add_argument("--issue", default="ospf",
                            help="issue id to resolve (default: ospf)")
    obs_report.add_argument("--json", action="store_true",
                            help="emit the JSON report to stdout")
    obs_report.add_argument("-o", "--output", default=None,
                            help="also write the JSON report to this path")
    obs_report.set_defaults(func=cmd_obs_report)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign (push atomicity invariant)",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="campaign seed; same seed, same report")
    chaos.add_argument("--campaign", default="smoke",
                       help="campaign name (see --list)")
    chaos.add_argument("--list", action="store_true",
                       help="list campaign names and exit")
    chaos.add_argument("--list-campaigns", action="store_true",
                       help="list campaigns with their scenarios and exit")
    chaos.add_argument("--json", action="store_true",
                       help="emit the JSON report to stdout")
    chaos.add_argument("--matrix", action="store_true",
                       help="run every registered campaign across --seeds "
                            "consecutive seeds and exit nonzero on any "
                            "failure")
    chaos.add_argument("--seeds", type=int, default=5,
                       help="seed count for --matrix (default: 5, starting "
                            "at --seed)")
    chaos.add_argument("-o", "--output", default=None,
                       help="also write the JSON report to this path")
    chaos.set_defaults(func=cmd_chaos)

    audit = sub.add_parser(
        "audit",
        help="tamper-evident audit chain tooling (export + offline verify)",
    )
    audit_sub = audit.add_subparsers(dest="audit_command", required=True)
    audit_export = audit_sub.add_parser(
        "export",
        help="resolve one ticket and dump its audit chains to JSON",
    )
    _add_network_argument(audit_export)
    audit_export.add_argument("--issue", default="ospf",
                              help="issue id to resolve (default: ospf)")
    audit_export.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="run a replicated trail with N chains (default: single chain)",
    )
    audit_export.add_argument(
        "--tamper", type=int, default=None, metavar="REPLICA",
        help="corrupt this replica's newest exported record (keyless "
             "attacker model; verify must flag it)",
    )
    audit_export.add_argument("-o", "--output", default="AUDIT_chains.json",
                              help="export path (default: AUDIT_chains.json)")
    audit_export.set_defaults(func=cmd_audit)
    audit_verify = audit_sub.add_parser(
        "verify",
        help="re-walk exported chains offline: first broken MAC link per "
             "chain + replica-quorum verdict",
    )
    audit_verify.add_argument("chains", help="export file to verify")
    audit_verify.set_defaults(func=cmd_audit)

    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as exc:
        out.write(f"error: {exc}\n")
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's not our error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
