"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

Instruments are **registered at import time** by the modules they observe
(the cache registers its hit/miss counters when :mod:`repro.control.cache`
loads, and so on), always under their final names — that is what lets
``tests/obs/test_docs_catalog.py`` verify the catalog in
docs/OBSERVABILITY.md against the registry without running a workload.
*Mutation* is a no-op while the layer is disabled
(:data:`repro.obs.state.STATE`), so instrumented hot paths cost one branch.

All instruments are thread-safe: PR 1's parallel policy verification
increments counters from worker threads, so every mutation takes the
instrument's lock. Values are plain Python numbers; ``snapshot()`` returns
JSON-ready dicts for ``python -m repro.cli obs report`` and the benchmarks.
"""

import bisect
import threading

from repro.obs.state import STATE
from repro.util.errors import ReproError

# Default histogram edges in milliseconds: sub-millisecond cache hits up to
# multi-second cold compiles on the university network.
DEFAULT_MS_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
                      500.0, 1000.0, 5000.0)


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"

    __slots__ = ("name", "unit", "help", "_value", "_lock")

    def __init__(self, name, unit="", help=""):
        self.name = name
        self.unit = unit
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n=1):
        """Add ``n`` (no-op while observability is disabled)."""
        if not STATE.enabled:
            return
        with self._lock:
            self._value += n

    @property
    def value(self):
        return self._value

    def reset(self):
        with self._lock:
            self._value = 0

    def snapshot(self):
        return {"kind": self.kind, "unit": self.unit, "value": self._value}


class Gauge:
    """A point-in-time value (e.g. worker threads in use)."""

    kind = "gauge"

    __slots__ = ("name", "unit", "help", "_value", "_lock")

    def __init__(self, name, unit="", help=""):
        self.name = name
        self.unit = unit
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        """Record the current value (no-op while disabled)."""
        if not STATE.enabled:
            return
        with self._lock:
            self._value = value

    @property
    def value(self):
        return self._value

    def reset(self):
        with self._lock:
            self._value = 0

    def snapshot(self):
        return {"kind": self.kind, "unit": self.unit, "value": self._value}


class Histogram:
    """A distribution over fixed upper-bound buckets (Prometheus ``le``).

    An observation lands in the first bucket whose edge is >= the value
    (edges are inclusive upper bounds); values above the last edge land in
    the overflow bucket reported as ``"le": "inf"``.
    """

    kind = "histogram"

    __slots__ = ("name", "unit", "help", "_edges", "_counts", "_count",
                 "_sum", "_min", "_max", "_lock")

    def __init__(self, name, unit="", help="", buckets=DEFAULT_MS_BUCKETS):
        self.name = name
        self.unit = unit
        self.help = help
        self._edges = tuple(sorted(buckets))
        if not self._edges:
            raise ReproError(f"histogram {name!r} needs at least one bucket")
        self._counts = [0] * (len(self._edges) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._lock = threading.Lock()

    def observe(self, value):
        """Record one observation (no-op while disabled)."""
        if not STATE.enabled:
            return
        with self._lock:
            index = bisect.bisect_left(self._edges, value)
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self):
        return self._count

    @property
    def edges(self):
        return self._edges

    def bucket_counts(self):
        """Per-bucket counts, overflow last (aligned with ``edges`` + inf)."""
        with self._lock:
            return list(self._counts)

    def reset(self):
        with self._lock:
            self._counts = [0] * (len(self._edges) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def snapshot(self):
        with self._lock:
            buckets = [
                {"le": edge, "count": count}
                for edge, count in zip(self._edges, self._counts)
            ]
            buckets.append({"le": "inf", "count": self._counts[-1]})
            mean = self._sum / self._count if self._count else None
            return {
                "kind": self.kind,
                "unit": self.unit,
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": self._min,
                "max": self._max,
                "mean": None if mean is None else round(mean, 6),
                "buckets": buckets,
            }


class MetricsRegistry:
    """A thread-safe, name-keyed registry of instruments.

    Registration is idempotent per name: re-registering returns the
    existing instrument (modules register at import time, and imports can
    repeat). Registering the same name as a different *kind* is a bug and
    raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}

    def counter(self, name, unit="", help=""):
        """Get-or-create the counter ``name``."""
        return self._register(Counter, name, unit=unit, help=help)

    def gauge(self, name, unit="", help=""):
        """Get-or-create the gauge ``name``."""
        return self._register(Gauge, name, unit=unit, help=help)

    def histogram(self, name, unit="", help="", buckets=DEFAULT_MS_BUCKETS):
        """Get-or-create the histogram ``name``."""
        return self._register(
            Histogram, name, unit=unit, help=help, buckets=buckets
        )

    def _register(self, cls, name, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def get(self, name):
        """The instrument registered as ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def names(self):
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def instruments(self):
        """All registered instruments, sorted by name."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self):
        """JSON-ready ``{name: {kind, unit, ...}}`` for every instrument."""
        return {inst.name: inst.snapshot() for inst in self.instruments()}

    def reset(self):
        """Zero every instrument's value; registrations are kept."""
        for inst in self.instruments():
            inst.reset()


_REGISTRY = MetricsRegistry()


def registry():
    """The process-wide metrics registry."""
    return _REGISTRY


def counter(name, unit="", help=""):
    """Module-level shorthand for :meth:`MetricsRegistry.counter`."""
    return _REGISTRY.counter(name, unit=unit, help=help)


def gauge(name, unit="", help=""):
    """Module-level shorthand for :meth:`MetricsRegistry.gauge`."""
    return _REGISTRY.gauge(name, unit=unit, help=help)


def histogram(name, unit="", help="", buckets=DEFAULT_MS_BUCKETS):
    """Module-level shorthand for :meth:`MetricsRegistry.histogram`."""
    return _REGISTRY.histogram(name, unit=unit, help=help, buckets=buckets)
