"""``repro.obs`` — zero-dependency tracing + metrics for the whole pipeline.

The paper's audit trail tells the customer *what* the enforcer decided;
this layer records *how*: a span tree over the session lifecycle (ticket
open → privilege translation → twin scoping → every reference-monitor
command → enforcer verify/schedule → production import) and a metrics
registry over the performance machinery PR 1 added (compile cache,
incremental rebuilds, LPM lookups, parallel verification). Audit records
carry the ``trace_id``/``span_id`` active when they were written, so a
signed audit record resolves to the full execution that produced it.

Everything is off by default and near-free when disabled; see
docs/OBSERVABILITY.md for the span naming conventions and the full metrics
catalog (enforced against the code by ``tests/obs/test_docs_catalog.py``).

Typical use::

    from repro import obs

    obs.enable()
    ... run a ticket ...
    obs.render_report(sys.stdout)
    for record in heimdall.audit.records:
        tree = obs.tracer().find_trace(record.trace_id)
"""

from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.report import render_report, report_dict
from repro.obs.state import STATE
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_ids,
    current_span,
    span,
    start_span,
    traced,
    tracer,
)

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "STATE",
    "Span",
    "Tracer",
    "counter",
    "current_ids",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "registry",
    "render_report",
    "report_dict",
    "reset",
    "span",
    "start_span",
    "traced",
    "tracer",
]


def enable():
    """Turn the observability layer on (spans recorded, metrics mutate)."""
    STATE.enabled = True


def disable():
    """Turn the layer off; every instrument becomes a no-op again."""
    STATE.enabled = False


def enabled():
    """Whether the layer is currently on."""
    return STATE.enabled


def reset():
    """Drop all traces and zero all metrics (registrations are kept)."""
    tracer().reset()
    registry().reset()
