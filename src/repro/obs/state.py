"""The process-wide on/off switch for the observability layer.

Observability is **off by default**: enabling it is an explicit decision
(``repro.obs.enable()``, or ``python -m repro.cli obs report`` which does it
for one run). Hot paths guard their instrumentation on a single attribute
read so the disabled cost is one branch::

    if STATE.enabled:
        _LOOKUPS.inc()

The flag lives in its own tiny module so both :mod:`repro.obs.trace` and
:mod:`repro.obs.metrics` (and any call site) can import it without cycles.
"""


class ObsState:
    """Holds the enable flag read on every instrumented hot path."""

    __slots__ = ("enabled",)

    def __init__(self):
        self.enabled = False


STATE = ObsState()
