"""Process-local tracing: span trees over the ticket lifecycle.

A **span** is one timed operation (a verification pass, one mediated console
command). Spans nest into a tree rooted at whatever started the work (one
Heimdall session, one workflow run), and every span carries the ``trace_id``
of its root — the same id the audit trail stamps on records written while
the span is active. That is the correlation the paper's tamper-evident audit
story needs (PAPER.md §3.3): an auditor walks from a signed audit record to
the full execution that produced it (see docs/OBSERVABILITY.md).

Design constraints, in priority order:

* **off by default** — while disabled, every entry point returns the shared
  :data:`NULL_SPAN`; no allocation, no clock read, no lock;
* **deterministic ids** — trace/span ids come from counters, never UUIDs
  (CONTRIBUTING.md: determinism is a feature). Only span *timings* touch the
  host clock, through :func:`repro.util.clock.monotonic_s`;
* **thread-safe** — PR 1's parallel policy verification finishes child spans
  on worker threads, so child attachment and id allocation take the tracer
  lock.

Parent resolution: within one thread, :func:`span` nests under the innermost
active span automatically (a thread-local stack). Work handed to another
thread passes its parent explicitly — capture :func:`current_span` before
dispatch, then ``span(..., parent=that)`` in the worker.
"""

import functools
import threading

from repro.obs.state import STATE
from repro.util.clock import monotonic_s


class Span:
    """One timed operation in a trace tree.

    Usable as a context manager (enter activates it on the current thread,
    exit finishes it) or with an explicit lifecycle via :meth:`finish` for
    spans that outlive one call frame (the per-session root).
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attrs",
        "started_s", "ended_s", "children", "_tracer",
    )

    def __init__(self, name, trace_id, span_id, parent_id, attrs, tracer):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.started_s = monotonic_s()
        self.ended_s = None
        self.children = []
        self._tracer = tracer

    @property
    def duration_s(self):
        """Elapsed seconds, or ``None`` while the span is still open."""
        if self.ended_s is None:
            return None
        return self.ended_s - self.started_s

    def set(self, **attrs):
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)

    def finish(self):
        """Stop the clock (idempotent: the first call wins)."""
        if self.ended_s is None:
            self.ended_s = monotonic_s()

    # -- tree queries --------------------------------------------------------

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """The first span named ``name`` in this subtree, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def span_ids(self):
        """Every span id in this subtree (audit correlation checks)."""
        return {span.span_id for span in self.walk()}

    def to_dict(self):
        """JSON-ready representation of this subtree."""
        duration = self.duration_s
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
            "duration_ms": (
                None if duration is None else round(duration * 1000.0, 3)
            ),
            "children": [child.to_dict() for child in self.children],
        }

    # -- context manager -----------------------------------------------------

    def __enter__(self):
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer._pop(self)
        self.finish()
        return False

    def __repr__(self):
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id})"
        )


class _NullSpan:
    """The shared no-op span returned while tracing is disabled.

    Mirrors the :class:`Span` surface so instrumented code never branches on
    the enabled flag itself; every method does nothing and every query is
    empty.
    """

    __slots__ = ()

    name = ""
    trace_id = ""
    span_id = ""
    parent_id = ""
    children = ()
    started_s = 0.0
    ended_s = 0.0
    duration_s = None

    @property
    def attrs(self):
        return {}

    def set(self, **attrs):
        pass

    def finish(self):
        pass

    def walk(self):
        return iter(())

    def find(self, name):
        return None

    def span_ids(self):
        return set()

    def to_dict(self):
        return {}

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __repr__(self):
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees and keeps every finished-or-open root for reports."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots = {}  # trace_id -> root Span, insertion-ordered
        self._trace_seq = 0
        self._span_seq = 0

    # -- span creation -------------------------------------------------------

    def span(self, name, parent=None, **attrs):
        """A context-manager span.

        Args:
            name: dotted span name (``subsystem.operation``; see the naming
                conventions in docs/OBSERVABILITY.md).
            parent: explicit parent :class:`Span`. Defaults to the innermost
                span active on the calling thread; with neither, the span
                roots a new trace.
            **attrs: initial span attributes.

        Returns:
            A new :class:`Span`, or :data:`NULL_SPAN` while disabled.
        """
        if not STATE.enabled:
            return NULL_SPAN
        return self._make(name, parent, attrs)

    def start_span(self, name, parent=None, **attrs):
        """Like :meth:`span` but for an explicit lifecycle.

        The span is *not* activated on the calling thread; the caller keeps
        the handle, passes it as ``parent=`` to later spans, and calls
        :meth:`Span.finish` when the operation ends (the per-session root in
        :class:`repro.core.heimdall.Heimdall` works this way).
        """
        if not STATE.enabled:
            return NULL_SPAN
        return self._make(name, parent, attrs)

    def traced(self, name, **attrs):
        """Decorator: run the wrapped function inside ``span(name)``."""

        def decorate(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(name, **attrs):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def _make(self, name, parent, attrs):
        if parent is None or parent is NULL_SPAN:
            parent = self.current()
        with self._lock:
            self._span_seq += 1
            span_id = f"S-{self._span_seq:06d}"
            if parent is None:
                self._trace_seq += 1
                trace_id = f"T-{self._trace_seq:04d}"
            else:
                trace_id = parent.trace_id
            span = Span(
                name, trace_id, span_id,
                parent.span_id if parent is not None else "",
                dict(attrs), self,
            )
            if parent is None:
                self._roots[trace_id] = span
            else:
                parent.children.append(span)
        return span

    # -- thread-local activation ---------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span):
        self._stack().append(span)

    def _pop(self, span):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current(self):
        """The innermost span active on the calling thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_ids(self):
        """``(trace_id, span_id)`` of the active span, or ``("", "")``.

        This is what :meth:`repro.core.enforcer.audit.AuditTrail.record`
        stamps on audit records; empty strings mean "recorded outside any
        span" (including the disabled case).
        """
        span = self.current()
        if span is None:
            return ("", "")
        return (span.trace_id, span.span_id)

    # -- queries -------------------------------------------------------------

    def traces(self):
        """Every root span (open or finished), oldest first."""
        with self._lock:
            return list(self._roots.values())

    def find_trace(self, trace_id):
        """The root span of ``trace_id``, or ``None``."""
        with self._lock:
            return self._roots.get(trace_id)

    def reset(self):
        """Forget all traces and restart id allocation (tests, CLI runs)."""
        with self._lock:
            self._roots = {}
            self._trace_seq = 0
            self._span_seq = 0
            self._local = threading.local()


_TRACER = Tracer()


def tracer():
    """The process-wide tracer."""
    return _TRACER


def span(name, parent=None, **attrs):
    """Module-level shorthand for :meth:`Tracer.span` on the global tracer."""
    return _TRACER.span(name, parent=parent, **attrs)


def start_span(name, parent=None, **attrs):
    """Module-level shorthand for :meth:`Tracer.start_span`."""
    return _TRACER.start_span(name, parent=parent, **attrs)


def traced(name, **attrs):
    """Module-level shorthand for :meth:`Tracer.traced`."""
    return _TRACER.traced(name, **attrs)


def current_span():
    """Module-level shorthand for :meth:`Tracer.current`."""
    return _TRACER.current()


def current_ids():
    """Module-level shorthand for :meth:`Tracer.current_ids`."""
    return _TRACER.current_ids()
