"""Render the collected observability state for humans and machines.

``python -m repro.cli obs report`` drives this: :func:`render_report` writes
the indented span trees and a metrics table to a stream, and
:func:`report_dict` returns the same content JSON-ready so benchmarks can
track instrument values across PRs. See docs/OBSERVABILITY.md for how to
read the output.
"""

from repro.obs.metrics import registry
from repro.obs.trace import tracer


def report_dict(tracer_=None, registry_=None):
    """JSON-ready dump of every trace tree and every metric.

    Args:
        tracer_: the :class:`~repro.obs.trace.Tracer` to dump (the global
            tracer by default).
        registry_: the :class:`~repro.obs.metrics.MetricsRegistry` to dump
            (the global registry by default).

    Returns:
        ``{"traces": [span tree dicts], "metrics": {name: snapshot}}``.
    """
    t = tracer_ if tracer_ is not None else tracer()
    r = registry_ if registry_ is not None else registry()
    return {
        "traces": [root.to_dict() for root in t.traces()],
        "metrics": r.snapshot(),
    }


def render_report(out, tracer_=None, registry_=None):
    """Write a human-readable timing/metrics summary to ``out``.

    Span trees come first (one indented block per trace, durations in
    milliseconds, attributes inline), then a table of every registered
    metric with a non-zero value, then the zero-valued instrument names on
    one line so the full catalog stays visible.
    """
    t = tracer_ if tracer_ is not None else tracer()
    r = registry_ if registry_ is not None else registry()

    roots = t.traces()
    out.write(f"traces: {len(roots)}\n")
    for root in roots:
        out.write(f"trace {root.trace_id}:\n")
        _render_span(out, root, depth=1)

    out.write("metrics:\n")
    quiet = []
    for inst in r.instruments():
        snap = inst.snapshot()
        if snap.get("value") or snap.get("count"):
            out.write(f"  {inst.name} ({snap['kind']}): {_value(snap)}\n")
        else:
            quiet.append(inst.name)
    if quiet:
        out.write(f"  (zero: {', '.join(quiet)})\n")


def _render_span(out, span, depth):
    duration = span.duration_s
    timing = "open" if duration is None else f"{duration * 1000.0:.1f}ms"
    attrs = ""
    if span.attrs:
        pairs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
        attrs = f"  [{pairs}]"
    out.write(f"{'  ' * depth}{span.name} ({span.span_id}) {timing}{attrs}\n")
    for child in span.children:
        _render_span(out, child, depth + 1)


def _value(snap):
    if snap["kind"] == "histogram":
        mean = snap["mean"]
        unit = snap["unit"] or "units"
        return (
            f"n={snap['count']} mean={mean:.3f}{unit} "
            f"min={snap['min']:.3f} max={snap['max']:.3f}"
        )
    unit = f" {snap['unit']}" if snap["unit"] else ""
    return f"{snap['value']}{unit}"
