"""Attack-surface measurement and adversary scripts (paper §5, Figures 8-9)."""

from repro.attack.commands import allowed_command_count, available_command_count
from repro.attack.surface import (
    ApproachResult,
    ExposureResult,
    evaluate_approaches,
    evaluate_exposure,
)

__all__ = [
    "ApproachResult",
    "ExposureResult",
    "allowed_command_count",
    "available_command_count",
    "evaluate_approaches",
    "evaluate_exposure",
]
