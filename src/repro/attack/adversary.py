"""Adversarial and careless technicians (paper §2.2 and Figure 6).

Three scripted behaviours, each runnable against the current-RMM baseline
(where they succeed — that is the motivation) and against Heimdall (where
some layer contains them):

* :func:`exfiltration_attempt` — the APT10 pattern: harvest credentials and
  sensitive configuration from customer devices (Figure 2);
* :func:`malicious_fix` — Figure 6: apply the legitimate ACL fix but slip in
  an extra rule opening a path to a sensitive host;
* :func:`careless_command` — Figure 3: fat-finger a disruptive command on a
  core device while working an unrelated ticket.

Each returns a structured report so tests and benchmarks can assert exactly
which defence layer (twin scoping, reference monitor, sanitisation, policy
enforcer) stopped what.
"""

from dataclasses import dataclass, field

from repro.core.twin.sanitize import SANITIZED_FIELDS
from repro.util.errors import EmulationError


@dataclass
class AttackReport:
    """What an adversary managed to do."""

    attack: str
    attempted: int = 0
    succeeded: int = 0
    blocked_by: list = field(default_factory=list)
    loot: list = field(default_factory=list)

    @property
    def contained(self):
        return self.succeeded == 0


def exfiltration_attempt(access, target_devices, secrets_by_device):
    """Harvest configs from ``target_devices`` through ``access``.

    ``access.execute(device, command)`` may raise :class:`EmulationError`
    (device not in twin) or return a denied result (reference monitor).
    ``secrets_by_device`` maps device -> {field: secret} of the *production*
    secrets; any appearing in captured output counts as loot.
    """
    report = AttackReport(attack="exfiltration")
    for device in target_devices:
        report.attempted += 1
        try:
            result = access.execute(device, "show running-config")
        except EmulationError:
            report.blocked_by.append((device, "twin-scoping"))
            continue
        if not result.ok:
            report.blocked_by.append((device, "reference-monitor"))
            continue
        secrets = secrets_by_device.get(device, {})
        found = [
            (field_name, secret)
            for field_name, secret in secrets.items()
            if secret and secret in result.output
        ]
        if found:
            report.succeeded += 1
            report.loot.extend((device, *item) for item in found)
        else:
            report.blocked_by.append((device, "sanitisation"))
    return report


def file_exfiltration(access, targets, marker="CONFIDENTIAL"):
    """The file-stealing half of Figure 2: ``cat`` sensitive host files.

    ``targets`` is a list of (host, path) pairs (see
    :func:`repro.scenarios.files.sensitive_paths`). A read only counts as
    loot when the content carries the sensitive ``marker`` — the twin's
    hosts exist but their filesystems are empty emulation shells.
    """
    report = AttackReport(attack="file-exfiltration")
    for host, path in targets:
        report.attempted += 1
        try:
            result = access.execute(host, f"cat {path}")
        except EmulationError:
            report.blocked_by.append((host, "twin-scoping"))
            continue
        if not result.ok:
            layer = (
                "reference-monitor"
                if "Privilege_msp" in (result.error or "")
                else "empty-emulation-filesystem"
            )
            report.blocked_by.append((host, layer))
            continue
        if marker in result.output:
            report.succeeded += 1
            report.loot.append((host, path))
        else:
            report.blocked_by.append((host, "empty-emulation-filesystem"))
    return report


def production_secrets(network, devices=None):
    """The credential material an exfiltrator is after."""
    devices = devices if devices is not None else network.topology.device_names()
    secrets = {}
    for device in devices:
        config = network.config(device)
        secrets[device] = {
            field_name: getattr(config, field_name)
            for field_name in SANITIZED_FIELDS
        }
    return secrets


@dataclass
class MaliciousFixScript:
    """Figure 6: a legitimate fix plus a smuggled extra change."""

    legitimate_commands: tuple
    malicious_commands: tuple
    device: str

    def all_commands(self):
        return self.legitimate_commands + self.malicious_commands


def malicious_fix(session_access, script):
    """Run a legitimate-looking fix that smuggles a malicious change.

    Returns per-command results; the caller (test/bench) then submits the
    session and asserts the enforcer's verdict.
    """
    results = []
    for command in script.all_commands():
        results.append(session_access.execute(script.device, command))
    return results


def careless_command(access, device, commands):
    """Figure 3: run a disruptive command by mistake.

    Returns the results; on the current workflow the damage is immediate, on
    Heimdall it lands in the twin and the enforcer refuses the import.
    """
    return [access.execute(device, command) for command in commands]
