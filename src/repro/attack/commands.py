"""Command inventories: the :math:`A_n` and :math:`C_n` of the paper's metric.

``A_n`` (available commands on node *n*) comes straight from the console's
declarative command catalog; ``C_n`` (allowed commands) evaluates each
catalog entry against a Privilege_msp. With no specification (the All and
Neighbor baselines) every available command is allowed.
"""

from repro.emulation.console import available_commands


def available_command_count(kind):
    """How many console commands a device of ``kind`` offers."""
    return len(available_commands(kind))


def allowed_command_count(kind, device, privilege_spec=None, interfaces=()):
    """How many of the device's commands the Privilege_msp permits.

    Interface-scoped commands count as allowed if permitted on *any* of the
    device's interfaces — one usable command is one unit of attack surface.
    """
    specs = available_commands(kind)
    if privilege_spec is None:
        return len(specs)
    allowed = 0
    for spec in specs:
        if privilege_spec.allows(spec.action, device):
            allowed += 1
            continue
        if any(
            privilege_spec.allows(spec.action, f"{device}:{iface}")
            for iface in interfaces
        ):
            allowed += 1
    return allowed
