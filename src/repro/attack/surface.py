"""The paper's attack-surface metric and the Figure 8/9 evaluation.

.. math::

    AttackSurface(\\%) = \\Big(\\frac{\\sum_n C_n}{\\sum_n A_n}\\cdot 0.5
                         + \\frac{VP}{P}\\cdot 0.5\\Big)\\cdot 100

``C_n``/``A_n`` are allowed/available console commands per node; ``VP`` is
the number of network policies a technician *could* violate with some
allowed command on some exposed node ("we search all possible commands on
accessible nodes"); ``P`` is the policy count. Feasibility is the paper's
definition: can the technician access the root-cause node at all.

The violation search walks each policy's representative-flow trace and asks,
per destructive action class, whether the Privilege_msp permits an action
that would break the policy:

* shutting / renumbering a transit interface breaks a reachability policy;
* routing changes (OSPF, statics) on a transit router black-hole it;
* ACL edits on a transit router can insert a deny (breaking reachability)
  or — on the blocking device — remove one (breaking isolation);
* switchport/VLAN edits on a switch stitching a traversed L2 segment break
  any policy riding that segment.
"""

from dataclasses import dataclass, field

from repro.attack.commands import allowed_command_count, available_command_count
from repro.control.builder import build_dataplane
from repro.dataplane.forwarding import Disposition
from repro.dataplane.reachability import ReachabilityAnalyzer


@dataclass
class ExposureResult:
    """The metric for one issue under one approach."""

    exposed_devices: frozenset
    feasible: bool
    command_ratio: float
    violation_ratio: float
    violable_policies: frozenset = field(default_factory=frozenset)

    @property
    def attack_surface(self):
        """The paper's weighted percentage."""
        return (self.command_ratio * 0.5 + self.violation_ratio * 0.5) * 100.0


@dataclass
class ApproachResult:
    """Aggregate over an issue sweep for one approach (one Fig 8/9 bar pair)."""

    approach: str
    feasibility_pct: float
    attack_surface_pct: float
    per_issue: list = field(default_factory=list)


def evaluate_exposure(network, issue, exposed_devices, policies,
                      privilege_spec=None, dataplane=None):
    """Compute feasibility + attack surface for one issue and exposure."""
    if dataplane is None:
        dataplane = build_dataplane(network)
    exposed = frozenset(exposed_devices)

    total_available = 0
    total_allowed = 0
    for device in network.topology.devices():
        total_available += available_command_count(device.kind)
        if device.name in exposed:
            total_allowed += allowed_command_count(
                device.kind,
                device.name,
                privilege_spec,
                interfaces=tuple(network.config(device.name).interfaces),
            )

    violable = _violable_policies(
        network, dataplane, policies, exposed, privilege_spec
    )

    return ExposureResult(
        exposed_devices=exposed,
        feasible=issue.root_cause_device in exposed,
        command_ratio=total_allowed / total_available if total_available else 0.0,
        violation_ratio=len(violable) / len(policies) if policies else 0.0,
        violable_policies=frozenset(violable),
    )


def evaluate_approaches(network, issues, policies, approaches):
    """Sweep ``issues`` (e.g. interface-down set) over named approaches.

    ``approaches`` maps name -> callable(broken_network, issue, dataplane)
    returning ``(exposed_devices, privilege_spec_or_None)``. Returns a list
    of :class:`ApproachResult` in the given order.
    """
    results = {name: [] for name in approaches}
    for issue in issues:
        broken = network.copy()
        issue.inject(broken)
        dataplane = build_dataplane(broken)
        for name, scope_fn in approaches.items():
            exposed, spec = scope_fn(broken, issue, dataplane)
            results[name].append(
                evaluate_exposure(
                    broken, issue, exposed, policies,
                    privilege_spec=spec, dataplane=dataplane,
                )
            )
    aggregated = []
    for name, per_issue in results.items():
        feasible = sum(1 for r in per_issue if r.feasible)
        mean_surface = (
            sum(r.attack_surface for r in per_issue) / len(per_issue)
            if per_issue else 0.0
        )
        aggregated.append(
            ApproachResult(
                approach=name,
                feasibility_pct=100.0 * feasible / len(per_issue) if per_issue else 0.0,
                attack_surface_pct=mean_surface,
                per_issue=per_issue,
            )
        )
    return aggregated


# -- violation search ---------------------------------------------------------


def _allows(spec, action, resource):
    return spec is None or spec.allows(action, resource)


def _violable_policies(network, dataplane, policies, exposed, spec):
    analyzer = ReachabilityAnalyzer(dataplane)
    hosts = set(network.hosts())
    violable = set()
    for policy in policies:
        trace = analyzer.trace(policy.flow)
        if policy.kind == "reachability" and trace.success:
            if _reachability_violable(
                network, dataplane, trace, exposed, spec, hosts
            ):
                violable.add(policy.policy_id)
        elif policy.kind == "isolation" and trace.disposition in (
            Disposition.DENIED_IN, Disposition.DENIED_OUT
        ):
            blocker = trace.last_device
            if blocker in exposed and (
                _allows(spec, "config.acl.entry", f"{blocker}:acl:any")
                or _allows(spec, "config.acl.entry", blocker)
                or _allows(
                    spec, "config.interface.acl_binding", f"{blocker}:any"
                )
            ):
                violable.add(policy.policy_id)
    return violable


def _reachability_violable(network, dataplane, trace, exposed, spec, hosts):
    for hop in trace.hops:
        device = hop.device
        if device in hosts or device not in exposed:
            continue
        for iface in (hop.in_interface, hop.out_interface):
            if iface is None:
                continue
            if _allows(spec, "config.interface.admin", f"{device}:{iface}"):
                return True
            if _allows(spec, "config.interface.address", f"{device}:{iface}"):
                return True
        if _allows(spec, "config.ospf.network", device):
            return True
        if _allows(spec, "config.static_route", device):
            return True
        if _allows(spec, "config.acl.entry", f"{device}:acl:any") or _allows(
            spec, "config.interface.acl_binding", f"{device}:any"
        ):
            return True
    return _l2_violable(network, dataplane, trace, exposed, spec)


def _l2_violable(network, dataplane, trace, exposed, spec):
    """Switchport edits on a stitching switch break the policy's L2 segments."""
    switches = set()
    for hop in trace.hops:
        if hop.out_interface is None:
            continue
        segment = dataplane.segments.segment_of(hop.device, hop.out_interface)
        if segment is not None:
            switches.update(segment.switches)
    for switch in switches:
        if switch not in exposed:
            continue
        if _allows(spec, "config.interface.switchport", f"{switch}:any"):
            return True
        if _allows(spec, "config.vlan", switch):
            return True
    return False
