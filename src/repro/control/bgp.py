"""eBGP route computation: session discovery + path-vector propagation.

A deliberately minimal but honest eBGP for border scenarios:

* **sessions** form between directly connected routers (same L2 segment,
  same subnet) with *mutual* ``neighbor ... remote-as`` statements whose AS
  numbers cross-check;
* each router **originates** its ``network <prefix> mask <mask>`` statements
  when it actually has a matching local route (connected subnet or static) —
  the IOS "network must be in the RIB" rule, at prefix granularity;
* routes **propagate** with AS-path prepending; a router rejects paths
  containing its own ASN (standard loop prevention, which also gives eBGP
  split horizon);
* best path: shortest AS path, then lowest neighbor address — deterministic
  like everything else here.

iBGP, MEDs, local-pref, communities, and route maps are out of scope: the
scenario borders are single-router ASes where eBGP semantics are fully
captured by the above (documented limitation).
"""

from dataclasses import dataclass, field

from repro.control.routes import Route


@dataclass(frozen=True)
class BgpSession:
    """One established eBGP session (directional record, both ways emitted)."""

    local_device: str
    local_interface: str
    local_address: object  # IPv4Address
    remote_device: str
    remote_address: object
    remote_as: int


@dataclass
class BgpRouteComputation:
    """Result of a BGP run: sessions and per-router routes."""

    sessions: list = field(default_factory=list)
    routes_by_device: dict = field(default_factory=dict)
    as_paths: dict = field(default_factory=dict)  # (device, prefix) -> tuple

    def sessions_of(self, device):
        return [s for s in self.sessions if s.local_device == device]


def compute_bgp_routes(network, segments):
    """Run eBGP over ``network`` given its L2 ``segments``."""
    speakers = {
        name: network.config(name).bgp
        for name in network.routers()
        if network.config(name).bgp is not None
    }
    result = BgpRouteComputation()
    if not speakers:
        return result

    sessions = _discover_sessions(network, segments, speakers)
    result.sessions = sessions

    # table[device][prefix] = (as_path, learned_from_address, out_iface)
    table = {name: {} for name in speakers}
    for name, bgp in speakers.items():
        for prefix in _originated(network.config(name), bgp):
            table[name][prefix] = ((), None, None)

    _propagate(speakers, sessions, table)

    for name in speakers:
        routes = []
        for prefix, (as_path, learned_from, out_iface) in table[name].items():
            if learned_from is None:
                continue  # locally originated: already in the RIB
            routes.append(
                Route(
                    prefix=prefix,
                    protocol="bgp",
                    out_interface=out_iface,
                    next_hop=learned_from,
                    metric=len(as_path),
                )
            )
            result.as_paths[(name, prefix)] = as_path
        result.routes_by_device[name] = routes
    return result


def _discover_sessions(network, segments, speakers):
    sessions = []
    for name, bgp in speakers.items():
        config = network.config(name)
        for statement in bgp.neighbors:
            peer_device = network.device_owning_ip(statement.address)
            if peer_device is None or peer_device not in speakers:
                continue
            peer_bgp = speakers[peer_device]
            if peer_bgp.asn != statement.remote_as:
                continue  # AS number mismatch: session never establishes
            # The peer must point back at one of our addresses with our ASN.
            local_iface = _facing_interface(
                network, segments, name, peer_device, statement.address
            )
            if local_iface is None:
                continue
            reverse = peer_bgp.neighbor_for(local_iface.address.ip)
            if reverse is None or reverse.remote_as != bgp.asn:
                continue
            sessions.append(
                BgpSession(
                    local_device=name,
                    local_interface=local_iface.name,
                    local_address=local_iface.address.ip,
                    remote_device=peer_device,
                    remote_address=statement.address,
                    remote_as=peer_bgp.asn,
                )
            )
    return sessions


def _facing_interface(network, segments, device, peer_device, peer_address):
    """Our live interface sharing subnet + segment with the peer address."""
    config = network.config(device)
    for iface in config.routed_interfaces():
        if iface.shutdown or peer_address not in iface.address.network:
            continue
        peer_config = network.config(peer_device)
        peer_iface = next(
            (
                p
                for p in peer_config.routed_interfaces()
                if p.address.ip == peer_address and not p.shutdown
            ),
            None,
        )
        if peer_iface is None:
            continue
        if segments.same_segment(
            (device, iface.name), (peer_device, peer_iface.name)
        ):
            return iface
    return None


def _originated(config, bgp):
    """Network statements backed by a matching local route."""
    local_prefixes = {
        iface.address.network
        for iface in config.routed_interfaces()
        if not iface.shutdown
    }
    local_prefixes.update(route.prefix for route in config.static_routes)
    return [prefix for prefix in bgp.networks if prefix in local_prefixes]


def _propagate(speakers, sessions, table):
    """Path-vector fixpoint over the session graph."""
    # Index sessions by receiving side for deterministic iteration.
    inbound = {}
    for session in sessions:
        inbound.setdefault(session.local_device, []).append(session)

    changed = True
    iterations = 0
    while changed and iterations < len(speakers) + 2:
        changed = False
        iterations += 1
        for receiver in sorted(table):
            local_asn = speakers[receiver].asn
            for session in sorted(
                inbound.get(receiver, []), key=lambda s: str(s.remote_address)
            ):
                sender = session.remote_device
                if sender not in table:
                    continue
                sender_asn = speakers[sender].asn
                out_iface = session.local_interface
                for prefix, (as_path, _from, _iface) in list(
                    table[sender].items()
                ):
                    candidate_path = (sender_asn,) + as_path
                    if local_asn in candidate_path:
                        continue  # loop prevention
                    candidate = (
                        candidate_path, session.remote_address, out_iface
                    )
                    current = table[receiver].get(prefix)
                    if current is not None and not _better(
                        candidate, current
                    ):
                        continue
                    table[receiver][prefix] = candidate
                    changed = True


def _better(candidate, current):
    """Shorter AS path wins; tie-break on lower learned-from address."""
    candidate_path, candidate_from, _ = candidate
    current_path, current_from, _ = current
    if current_from is None:
        return False  # never displace a locally originated prefix
    if len(candidate_path) != len(current_path):
        return len(candidate_path) < len(current_path)
    return str(candidate_from) < str(current_from)
