"""The change-dependency graph: invalidation cones for incremental compiles.

Given a config diff, this module answers "what can that change have
invalidated?" — the question every incremental consumer of the compiler
shares. A change maps to its **cone**: the L2 segments it can rewire, the
OSPF adjacency set and SPF region it can perturb, and therefore the routers
whose routes can differ. The builder rebuilds only the cone; the staged
rollout engine intersects per-wave cones to decide which waves may be
probed concurrently (disjoint cones cannot influence each other's
mixed-version dataplane).

Two invariants govern everything here (docs/ARCHITECTURE.md "Dependency
graph & incremental SPF"):

* **over-scoping is always safe** — a too-wide cone recomputes artifacts
  that come out identical (the ``dataplane.deps.overscope`` fault point
  deliberately widens the cone to the whole network and the chaos suite
  asserts the plane is unchanged);
* **under-scoping is impossible by construction** — every predicate below
  is conservative: any config field a compile stage reads is part of the
  diff view that dirties that stage.
"""

from dataclasses import dataclass, field

from repro import faults
from repro.control.l2 import compute_segments
from repro.obs import metrics as obs_metrics
from repro.util.errors import DepsOverscopeError

_CONE_DEVICES = obs_metrics.histogram(
    "dataplane.deps.cone_devices", unit="devices",
    help="invalidation-cone size (devices whose artifacts may be rebuilt) "
         "per incremental compile",
)
_SPF_FULL = obs_metrics.counter(
    "dataplane.deps.spf_full", unit="routers",
    help="SPF sources recomputed with a full Dijkstra during incremental "
         "OSPF runs",
)
_SPF_DELTA = obs_metrics.counter(
    "dataplane.deps.spf_delta", unit="routers",
    help="SPF sources that reused their shortest-path tree and only "
         "re-selected routes against the advertisement delta",
)
_SPF_REUSED = obs_metrics.counter(
    "dataplane.deps.spf_reused", unit="routers",
    help="SPF sources whose baseline route lists were reused verbatim "
         "(no advertisement or edge delta reached them)",
)
_ROUTERS_RECOMPUTED = obs_metrics.counter(
    "dataplane.deps.routers_recomputed", unit="routers",
    help="router FIBs rebuilt (not shared with the baseline) per "
         "incremental compile",
)
_OVERSCOPED = obs_metrics.counter(
    "dataplane.deps.overscoped", unit="cones",
    help="invalidation cones widened to the whole network by the "
         "dataplane.deps.overscope fault point",
)

OVERSCOPE_FAULT = faults.fault_point(
    "dataplane.deps.overscope", error=DepsOverscopeError,
    help="the cone computation distrusts itself and widens the cone to the "
         "whole network; every artifact recompiles (over-invalidation is "
         "always safe, so the resulting plane must be byte-identical)",
)

# Change categories/kinds that cannot move routes on any *other* device:
# ACLs and management state are not inputs to the compile at all, and a
# static route (or host gateway) only ever lands in its own device's FIB.
_LOCAL_CATEGORIES = frozenset({"acl", "mgmt", "credential"})
_LOCAL_KINDS = frozenset({
    "static_route", "static_routes_reordered", "default_gateway",
    "interface.description",
})


@dataclass(frozen=True)
class InvalidationCone:
    """What one config diff can have invalidated, stage by stage.

    ``changed`` is the devices whose config content differs;
    ``segments`` is the (possibly recomputed) segment table to compile
    against; the dirty flags say which protocol runs must be redone and
    how. ``ospf_dirty_routers`` names the routers whose OSPF-relevant
    state changed — the seeds the incremental SPF propagates deltas from.
    """

    changed: frozenset
    segments: object
    l2_dirty: bool
    routing_l2_dirty: bool
    ospf_dirty_routers: frozenset
    bgp_dirty: bool
    overscoped: bool = False
    _region: frozenset = field(default=None, compare=False)

    @property
    def ospf_dirty(self):
        return self.routing_l2_dirty or bool(self.ospf_dirty_routers)


def invalidation_cone(artifacts, base_network, network, changed):
    """Classify what the diff between two snapshots can have invalidated.

    ``artifacts`` is the baseline's :class:`CompiledDataplane`;
    ``changed`` the devices whose fingerprints differ. Returns an
    :class:`InvalidationCone` carrying the segment table the compile
    should use (the baseline's, shared, unless the diff is L2-relevant).
    """
    routers = network.routers()
    router_set = set(routers)
    try:
        OVERSCOPE_FAULT.fire(devices=len(changed))
    except DepsOverscopeError:
        _OVERSCOPED.inc()
        cone = InvalidationCone(
            changed=frozenset(network.configs),
            segments=compute_segments(network),
            l2_dirty=True,
            routing_l2_dirty=True,
            ospf_dirty_routers=frozenset(router_set),
            bgp_dirty=_has_bgp(base_network, network, routers),
            overscoped=True,
        )
        _CONE_DEVICES.observe(len(network.configs))
        return cone

    old_new = {d: (base_network.config(d), network.config(d)) for d in changed}

    l2_dirty = any(l2_relevant_diff(old, new) for old, new in old_new.values())
    segments = compute_segments(network) if l2_dirty else artifacts.segments
    # The protocols see segments only via same_segment on router endpoints,
    # so a rewired host-only broadcast domain leaves both runs valid.
    routing_l2_dirty = l2_dirty and (
        router_partition(segments, router_set)
        != router_partition(artifacts.segments, router_set)
    )
    ospf_dirty_routers = frozenset(
        device for device, (old, new) in old_new.items()
        if device in router_set and ospf_relevant_diff(old, new)
    )
    bgp_dirty = _has_bgp(base_network, network, routers) and (
        routing_l2_dirty
        or any(bgp_relevant_diff(old, new) for old, new in old_new.values())
    )
    cone = InvalidationCone(
        changed=frozenset(changed),
        segments=segments,
        l2_dirty=l2_dirty,
        routing_l2_dirty=routing_l2_dirty,
        ospf_dirty_routers=ospf_dirty_routers,
        bgp_dirty=bgp_dirty,
    )
    _CONE_DEVICES.observe(len(cone_devices(cone, artifacts, router_set)))
    return cone


def cone_devices(cone, artifacts, router_set):
    """The devices whose compiled artifacts the cone may rebuild.

    Changed devices always; if a routing run is dirty, every router in the
    SPF region(s) the dirty routers belong to (their routes can move); if
    the router partition itself changed (or BGP is dirty — session
    discovery is global), every router.
    """
    devices = set(cone.changed)
    if cone.routing_l2_dirty or cone.bgp_dirty or cone.overscoped:
        return devices | router_set
    if cone.ospf_dirty_routers:
        devices |= spf_region(
            artifacts.ospf, cone.ospf_dirty_routers & router_set
        )
    return devices


def record_spf(full, delta, reused):
    """Count one incremental OSPF run's per-source outcomes."""
    if full:
        _SPF_FULL.inc(full)
    if delta:
        _SPF_DELTA.inc(delta)
    if reused:
        _SPF_REUSED.inc(reused)


def record_fib_rebuilds(count):
    """Count the router FIBs one incremental compile actually rebuilt."""
    if count:
        _ROUTERS_RECOMPUTED.inc(count)


# -- diff predicates (what each compile stage reads) ---------------------------


def l2_relevant_diff(old, new):
    """Whether two configs differ in anything the segment computation reads."""

    def view(config):
        return {
            name: (
                iface.shutdown, iface.is_routed, iface.switchport_mode,
                iface.access_vlan, iface.trunk_vlans,
            )
            for name, iface in config.interfaces.items()
        }

    return view(old) != view(new)


def ospf_relevant_diff(old, new):
    """Whether two configs differ in anything the OSPF run reads."""
    if old.ospf != new.ospf:
        return True

    def view(config):
        return {
            name: (iface.address, iface.shutdown, iface.ospf_cost)
            for name, iface in config.interfaces.items()
        }

    return view(old) != view(new)


def bgp_relevant_diff(old, new):
    """Whether two configs differ in anything the BGP run reads."""
    if old.bgp != new.bgp or old.static_routes != new.static_routes:
        return True

    def view(config):
        return {
            name: (iface.address, iface.shutdown)
            for name, iface in config.interfaces.items()
        }

    return view(old) != view(new)


def router_partition(segments, router_set):
    """Each router endpoint mapped to the router endpoints in its segment.

    Two segment tables with equal partitions answer every
    ``same_segment(router_endpoint, router_endpoint)`` query identically,
    which is the only way OSPF adjacency discovery and BGP session
    discovery consume the table.
    """
    partition = {}
    for segment in segments:
        members = frozenset(
            endpoint for endpoint in segment.endpoints
            if endpoint[0] in router_set
        )
        for endpoint in members:
            partition[endpoint] = members
    return partition


def _has_bgp(base_network, network, routers):
    return any(
        network.config(r).bgp is not None
        or base_network.config(r).bgp is not None
        for r in routers
    )


# -- SPF regions and per-wave cones (the rollout engine's view) ----------------


def spf_region(ospf, seeds):
    """Routers reachable from ``seeds`` over the OSPF adjacency graph.

    The connected-component closure: a routing change on a seed can move
    routes on exactly these routers (plus nothing outside — SPF never
    crosses a partition). Seeds are always in their own region.
    """
    adjacency = {}
    for neighbor in ospf.neighbors:
        adjacency.setdefault(neighbor.local_device, set()).add(
            neighbor.remote_device
        )
    region = set(seeds)
    frontier = list(seeds)
    while frontier:
        device = frontier.pop()
        for peer in adjacency.get(device, ()):
            if peer not in region:
                region.add(peer)
                frontier.append(peer)
    return region


def wave_cone(plane, devices, changes):
    """The devices a wave's changes can influence, judged on ``plane``.

    Conservative per change: purely local kinds (ACLs, management state,
    a device's own static routes) stay on their device; anything that can
    move a segment or a route widens to the device's broadcast-domain
    neighbours plus its SPF region. Two waves with disjoint cones cannot
    perturb each other's mixed-version dataplane, so their health probes
    may run concurrently (``RolloutConfig.probe_parallel``).
    """
    cone = set(devices)
    for change in changes:
        if (
            change.category in _LOCAL_CATEGORIES
            or change.kind in _LOCAL_KINDS
        ):
            continue
        device = change.device
        config = plane.network.configs.get(device)
        if config is not None:
            for iface_name in config.interfaces:
                segment = plane.segments.segment_of(device, iface_name)
                if segment is not None:
                    cone.update(segment.devices())
                    cone.update(segment.switches)
        # A switch has no L3 endpoints; it appears as the stitching device
        # of the segments its VLANs carry.
        for segment in plane.segments:
            if device in segment.switches:
                cone.update(segment.devices())
                cone.update(segment.switches)
        cone |= spf_region(plane.ospf, {device})
    return frozenset(cone)


def cones_disjoint(cones):
    """Whether the given cones are pairwise disjoint."""
    seen = set()
    for cone in cones:
        if seen & cone:
            return False
        seen |= cone
    return True
