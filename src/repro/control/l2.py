"""L2 resolution: switchports and VLANs -> broadcast domains.

The control plane needs to know which L3 endpoints (addressed, non-shutdown
interfaces on routers and hosts) can exchange Ethernet frames directly. Two
endpoints share a :class:`Segment` when a path of cables and switchports
carrying the same VLAN joins them:

* a cable between two L3 endpoints is a point-to-point segment;
* an access port injects untagged frames into its VLAN on that switch;
* trunk-to-trunk cables splice a VLAN across switches when both ends carry it;
* access-to-access cables splice the two (possibly differently numbered)
  VLANs — this is exactly the situation the scenario VLAN issue exploits.

Shutdown interfaces drop out entirely, which is how "bring an interface
down" failures propagate into the data plane.
"""

from dataclasses import dataclass, field

from repro.net.topology import DeviceKind


@dataclass
class Segment:
    """One broadcast domain: the set of (device, interface) L3 endpoints.

    ``switches`` records the switches whose VLAN contexts stitch the domain
    together — the devices a switchport misconfiguration on would break it.
    """

    segment_id: int
    endpoints: frozenset = field(default_factory=frozenset)
    switches: frozenset = field(default_factory=frozenset)

    def devices(self):
        """Names of devices with an endpoint in this segment."""
        return sorted({device for device, _iface in self.endpoints})

    def __contains__(self, endpoint):
        return endpoint in self.endpoints


class _UnionFind:
    """Minimal union-find over hashable keys."""

    def __init__(self):
        self._parent = {}

    def find(self, key):
        parent = self._parent.setdefault(key, key)
        if parent != key:
            self._parent[key] = parent = self.find(parent)
        return parent

    def union(self, a, b):
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def groups(self):
        clusters = {}
        for key in self._parent:
            clusters.setdefault(self.find(key), set()).add(key)
        return list(clusters.values())


def _port_state(network, device, iface_name):
    """The interface config if the port is usable, else ``None``."""
    config = network.config(device)
    iface = config.interfaces.get(iface_name)
    if iface is None or iface.shutdown:
        return None
    return iface


def compute_segments(network):
    """All L2 broadcast domains of ``network``.

    Returns :class:`SegmentTable` mapping L3 endpoints to segments.
    """
    uf = _UnionFind()
    switches = set(network.switches())

    def l3_key(device, iface_name):
        return ("l3", device, iface_name)

    def vlan_key(switch, vlan_id):
        return ("vlan", switch, vlan_id)

    # Register every live L3 endpoint so singleton segments exist too.
    for device in network.topology.devices():
        if device.kind == DeviceKind.SWITCH:
            continue
        for iface_name in device.interfaces:
            iface = _port_state(network, device.name, iface_name)
            if iface is not None and iface.is_routed:
                uf.find(l3_key(device.name, iface_name))

    for link in network.topology.links():
        side_a, side_b = link.endpoints()
        cfg_a = _port_state(network, side_a.device, side_a.name)
        cfg_b = _port_state(network, side_b.device, side_b.name)
        if cfg_a is None or cfg_b is None:
            continue  # either end down: no frames cross this cable

        a_is_switch = side_a.device in switches
        b_is_switch = side_b.device in switches

        if not a_is_switch and not b_is_switch:
            if cfg_a.is_routed and cfg_b.is_routed:
                uf.union(
                    l3_key(side_a.device, side_a.name),
                    l3_key(side_b.device, side_b.name),
                )
        elif a_is_switch != b_is_switch:
            switch_side, other_side = (
                (side_a, side_b) if a_is_switch else (side_b, side_a)
            )
            switch_cfg = cfg_a if a_is_switch else cfg_b
            other_cfg = cfg_b if a_is_switch else cfg_a
            if not other_cfg.is_routed:
                continue
            if switch_cfg.switchport_mode == "access":
                uf.union(
                    l3_key(other_side.device, other_side.name),
                    vlan_key(switch_side.device, switch_cfg.access_vlan),
                )
            # A routed endpoint on a trunk would need tagging support on the
            # endpoint; the scenario networks attach endpoints to access
            # ports only, so a trunk to a non-switch carries no frames here.
        else:
            _splice_switch_link(uf, vlan_key, side_a, cfg_a, side_b, cfg_b)

    segments = []
    table = {}
    for group in uf.groups():
        endpoints = frozenset(
            (device, iface) for kind, device, iface in group if kind == "l3"
        )
        if not endpoints:
            continue
        switch_names = frozenset(
            device for kind, device, _vlan in group if kind == "vlan"
        )
        segment = Segment(
            segment_id=len(segments),
            endpoints=endpoints,
            switches=switch_names,
        )
        segments.append(segment)
        for endpoint in endpoints:
            table[endpoint] = segment
    return SegmentTable(segments, table)


def _splice_switch_link(uf, vlan_key, side_a, cfg_a, side_b, cfg_b):
    """Join per-switch VLAN contexts across a switch-to-switch cable."""
    mode_a, mode_b = cfg_a.switchport_mode, cfg_b.switchport_mode
    if mode_a == "access" and mode_b == "access":
        uf.union(
            vlan_key(side_a.device, cfg_a.access_vlan),
            vlan_key(side_b.device, cfg_b.access_vlan),
        )
    elif mode_a == "trunk" and mode_b == "trunk":
        vlans_a = cfg_a.trunk_vlans
        vlans_b = cfg_b.trunk_vlans
        if vlans_a is None and vlans_b is None:
            return  # unconstrained trunks: nothing to enumerate against
        carried = set(vlans_a or vlans_b) & set(vlans_b or vlans_a)
        for vlan_id in carried:
            uf.union(
                vlan_key(side_a.device, vlan_id),
                vlan_key(side_b.device, vlan_id),
            )
    elif {mode_a, mode_b} == {"access", "trunk"}:
        # Untagged frames from the access side ride the trunk's native
        # VLAN 1; splice only in that textbook case.
        access_side, access_cfg, trunk_side, trunk_cfg = (
            (side_a, cfg_a, side_b, cfg_b)
            if mode_a == "access"
            else (side_b, cfg_b, side_a, cfg_a)
        )
        if access_cfg.access_vlan == 1 and trunk_cfg.carries_vlan(1):
            uf.union(
                vlan_key(access_side.device, 1),
                vlan_key(trunk_side.device, 1),
            )


class SegmentTable:
    """Lookup structure over computed segments."""

    def __init__(self, segments, by_endpoint):
        self.segments = segments
        self._by_endpoint = by_endpoint

    def segment_of(self, device, iface_name):
        """The segment containing this endpoint, or ``None`` if isolated/down."""
        return self._by_endpoint.get((device, iface_name))

    def adjacent_endpoints(self, device, iface_name):
        """Other endpoints reachable at L2 from this one."""
        segment = self.segment_of(device, iface_name)
        if segment is None:
            return []
        return sorted(ep for ep in segment.endpoints if ep != (device, iface_name))

    def same_segment(self, endpoint_a, endpoint_b):
        """Whether two (device, iface) endpoints share a broadcast domain."""
        seg_a = self._by_endpoint.get(tuple(endpoint_a))
        return seg_a is not None and tuple(endpoint_b) in seg_a.endpoints

    def __len__(self):
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)
