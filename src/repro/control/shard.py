"""Sharded data-plane compilation and policy verification for mega-networks.

The monolithic pipeline (:mod:`repro.control.builder`) is fine at paper
scale (~36 devices) but a generated mega-network
(:mod:`repro.scenarios.generate`) has hundreds of routers, and per-source
SPF plus per-router FIB construction dominates the compile. This module
partitions that work into **shards** and runs them across a
``ProcessPoolExecutor``:

* **Shard boundary = dependency-cone partition.** A router's routes can
  only depend on routers inside its SPF connected component (the same
  boundary :mod:`repro.control.deps` uses to scope invalidation), so
  components are computed first and every shard stays inside one — workers
  never need each other's results. Components larger than ``shard_size``
  are split into contiguous source ranges purely for load balancing.
* **Exact equivalence.** The sharded compile is byte-identical to
  ``build_dataplane(use_cache=False)`` — same OSPF neighbor list, same
  per-router route lists, same FIB contents in the same canonical order
  (property-tested in ``tests/control/test_shard.py``). It reuses the
  monolithic pipeline's own selection primitives and only restructures the
  work around them: adjacencies come from a hash-join on ``(area, subnet)``
  instead of the all-pairs scan, every source shares one pre-sorted
  adjacency index instead of rebuilding and re-sorting its own, each shard
  filters advertisements to its component, and FIBs are assembled from a
  per-prefix winner merge with a shared sort-key table instead of
  re-deriving ``(-prefixlen, str(prefix))`` per installed route.
* **Graceful degradation.** A worker process dying (the
  ``scale.shard.crash`` fault point, or a real pool breakage) loses only
  its shard: the parent re-runs the lost shard in-process — the same
  degrade-don't-fail idiom the parallel policy verifier uses for dying
  threads — and counts it on ``scale.shard.degraded``.

Workers inherit their inputs by ``fork`` (the compile task is staged in a
module global before the pool spawns), so nothing network-sized is
pickled; results travel back as plain route lists and FIBs, both of which
are lock-free and picklable. With one effective worker (the default on a
single-CPU host) the executor is bypassed entirely and shards run in the
parent — same results, no pool overhead.
"""

import heapq
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro import faults
from repro.control import ospf as _ospf
from repro.control.bgp import compute_bgp_routes
from repro.control.builder import (
    _connected_routes,
    _host_routes,
    _plane,
    _static_routes,
)
from repro.control.cache import (
    CompiledDataplane,
    sharded_dataplane_cache,
    snapshot_fingerprint,
)
from repro.control.l2 import compute_segments
from repro.control.ospf import OspfRouteComputation
from repro.control.routes import ADMIN_DISTANCE, Route, select_best_routes
from repro.dataplane.fib import Fib
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.state import STATE as _OBS
from repro.policy.verification import VerificationReport
from repro.util.clock import monotonic_s
from repro.util.errors import ShardWorkerError

DEFAULT_SHARD_SIZE = 64

_OSPF_DISTANCE = ADMIN_DISTANCE["ospf"]

_SHARDS = obs_metrics.gauge(
    "scale.shards", unit="shards",
    help="shards in the most recent sharded compile",
)
_WORKERS = obs_metrics.gauge(
    "scale.workers", unit="processes",
    help="worker processes used by the most recent sharded compile/verify",
)
_SHARD_ROUTERS = obs_metrics.histogram(
    "scale.shard.routers", unit="routers",
    help="SPF sources per shard in sharded compiles",
)
_COMPILE_MS = obs_metrics.histogram(
    "scale.compile.ms", unit="ms",
    help="wall-clock milliseconds per sharded compile (cache hits excluded)",
)
_VERIFY_MS = obs_metrics.histogram(
    "scale.verify.ms", unit="ms",
    help="wall-clock milliseconds per sharded verification pass",
)
_DEGRADED = obs_metrics.counter(
    "scale.shard.degraded", unit="shards",
    help="compile/verify shards re-run in-process after a worker death",
)

_CRASH_FAULT = faults.fault_point(
    "scale.shard.crash", error=ShardWorkerError,
    help="a sharded compile/verify worker process dies; the parent re-runs "
         "the lost shard in-process (graceful degradation)",
)

# Worker inputs, staged before the pool forks so children inherit them by
# address-space copy instead of pickling a whole network per task. Cleared
# once the pool is done; ``None`` whenever no sharded run is in flight.
_TASK = None
_VERIFY_TASK = None


def effective_workers(workers):
    """Resolve a ``workers`` request against the host's CPU count."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


@dataclass(frozen=True)
class Shard:
    """One unit of compile work: SPF sources within one component."""

    index: int
    component: int
    sources: tuple


@dataclass(frozen=True)
class ShardPlan:
    """The partition of a network's routers into shards.

    ``component_of`` maps each OSPF-active router to its SPF connected
    component; routers absent from it run no OSPF and need no SPF work.
    """

    shards: tuple
    component_of: dict


def plan_shards(routers, active, pairs, shard_size=DEFAULT_SHARD_SIZE):
    """Partition ``routers`` into shards along SPF component boundaries.

    ``active`` maps router name to its OSPF-activated interfaces and
    ``pairs`` is the non-empty adjacency-pair index from discovery; two
    routers share a component iff they are connected through adjacencies,
    which is exactly the scope outside which no route of theirs can
    depend. Components bigger than ``shard_size`` are split into
    contiguous chunks (balance only — every chunk still carries its
    component id so workers filter advertisements per component).
    """
    adjacency = {}
    for u, v in pairs:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)

    component_of = {}
    component_count = 0
    for router in routers:
        if not active.get(router) or router in component_of:
            continue
        component_of[router] = component_count
        frontier = [router]
        while frontier:
            node = frontier.pop()
            for peer in adjacency.get(node, ()):
                if peer not in component_of:
                    component_of[peer] = component_count
                    frontier.append(peer)
        component_count += 1

    members = {}
    for router in routers:
        component = component_of.get(router)
        if component is not None:
            members.setdefault(component, []).append(router)

    shards = []
    for component in sorted(members):
        sources = members[component]
        chunks = -(-len(sources) // shard_size)  # ceil division
        per_chunk = -(-len(sources) // chunks)
        for start in range(0, len(sources), per_chunk):
            shards.append(Shard(
                index=len(shards),
                component=component,
                sources=tuple(sources[start:start + per_chunk]),
            ))
    return ShardPlan(shards=tuple(shards), component_of=component_of)


def compile_shard_plan(network, shard_size=DEFAULT_SHARD_SIZE):
    """The :class:`ShardPlan` ``sharded_compile`` would use for ``network``.

    Runs only the planning prefix of the pipeline (segments, adjacency
    discovery, component partition) — benchmarks and tests use it to report
    or assert the shard layout without compiling anything.
    """
    segments = compute_segments(network)
    routers = network.routers()
    active = {
        name: _ospf._ospf_interfaces(network.config(name))
        for name in routers
    }
    prepared = {
        name: _ospf._prepare_entries(network.config(name), active[name])
        for name in routers
    }
    _neighbors, _edges, pairs = _joined_adjacencies(segments, prepared)
    return plan_shards(routers, active, pairs, shard_size=shard_size)


# -- sharded compile -----------------------------------------------------------


class _CompileTask:
    """Everything a compile worker needs, inherited via fork."""

    __slots__ = (
        "network", "plan", "adjacency", "ads_by_component", "bgp_routes",
        "sort_pos", "hop_cache",
    )

    def __init__(self, network, plan, adjacency, ads_by_component,
                 bgp_routes):
        self.network = network
        self.plan = plan
        self.adjacency = adjacency
        self.ads_by_component = ads_by_component
        self.bgp_routes = bgp_routes
        # prefix key -> (-prefixlen, str(prefix)): the FIB's canonical sort
        # key, computed once per unique prefix instead of once per route.
        self.sort_pos = {}
        # interface id -> (next-hop IPv4Address, its string form), shared
        # by every source that reaches a destination through it.
        self.hop_cache = {}


def sharded_compile(network, workers=None, shard_size=DEFAULT_SHARD_SIZE,
                    use_cache=True):
    """Compile ``network`` through the sharded pipeline.

    Byte-identical results to ``build_dataplane(network)``; the difference
    is purely how the work is scheduled. ``workers=None`` uses the host's
    CPU count; one effective worker runs every shard in-process (no pool).
    ``use_cache`` consults the process-wide *sharded* compile cache — pass
    ``False`` for cold benchmarks. A cache miss with caching enabled pays
    one snapshot fingerprint; with caching disabled the compile skips
    fingerprinting entirely (the artifacts then carry ``None`` fingerprints
    and a later incremental build against them falls back to a full
    compile, which is always safe).
    """
    cache = sharded_dataplane_cache() if use_cache else None
    fingerprint = topology_fp = None
    device_fps = None
    if cache is not None:
        fingerprint, topology_fp, device_fps = snapshot_fingerprint(network)
        artifacts = cache.get(fingerprint)
        if artifacts is not None:
            return _plane(network, artifacts)
    started = monotonic_s() if _OBS.enabled else 0.0
    workers = effective_workers(workers)
    with obs_trace.span(
        "scale.compile", devices=len(network.configs), workers=workers,
    ) as cspan:
        artifacts = _sharded_full_compile(
            network, fingerprint, topology_fp, device_fps,
            workers, shard_size, cspan,
        )
    if _OBS.enabled:
        _COMPILE_MS.observe((monotonic_s() - started) * 1000.0)
    if cache is not None:
        cache.put(fingerprint, artifacts)
    return _plane(network, artifacts)


def _sharded_full_compile(network, fingerprint, topology_fp, device_fps,
                          workers, shard_size, cspan):
    segments = compute_segments(network)
    routers = network.routers()
    active = {
        name: _ospf._ospf_interfaces(network.config(name))
        for name in routers
    }
    prepared = {
        name: _ospf._prepare_entries(network.config(name), active[name])
        for name in routers
    }
    neighbors, edges, pairs = _joined_adjacencies(segments, prepared)
    ads_by_router = {
        name: _ospf._router_advertisements(
            name, network.config(name), active[name]
        )
        for name in routers
    }
    bgp = compute_bgp_routes(network, segments)
    plan = plan_shards(routers, active, pairs, shard_size=shard_size)

    # One adjacency index for every source, pre-sorted by (cost, neighbor)
    # — the exact per-visit order _dijkstra derives by sorting on demand.
    adjacency = {}
    for u, v, cost, iface_u, iface_v in edges:
        adjacency.setdefault(u, []).append((v, cost, iface_u, iface_v))
    for entries in adjacency.values():
        entries.sort(key=lambda e: (e[1], e[0]))

    # Advertisements filtered per component and grouped per advertiser,
    # preserving flat order (the flat list is already advertiser-grouped).
    # An advertiser outside the source's component is unreachable and
    # skipped during selection anyway; filtering just stops paying for it,
    # and grouping lets each source resolve an advertiser's distance and
    # next hop once per group instead of once per advertisement.
    ads_by_component = {}
    for name in routers:
        component = plan.component_of.get(name)
        if component is not None and ads_by_router[name]:
            ads_by_component.setdefault(component, []).append(
                (name, tuple(ads_by_router[name]))
            )

    task = _CompileTask(
        network, plan, adjacency, ads_by_component, bgp.routes_by_device
    )
    workers = min(workers, max(1, len(plan.shards)))
    _SHARDS.set(len(plan.shards))
    _WORKERS.set(workers)
    if _OBS.enabled:
        for shard in plan.shards:
            _SHARD_ROUTERS.observe(len(shard.sources))

    results, degraded = _run_shards(task, workers)
    cspan.set(shards=len(plan.shards), degraded=degraded)

    ospf = OspfRouteComputation(neighbors=neighbors)
    fibs = {}
    for router in routers:
        entry = results.get(router)
        if entry is None:
            # No OSPF process (or no activated interfaces): connected,
            # static, and BGP routes still install.
            ospf.routes_by_device[router] = []
            fibs[router] = _merged_fib(
                network.config(router),
                bgp.routes_by_device.get(router, ()), (), (), task.sort_pos,
            )
        else:
            routes, fib = entry
            ospf.routes_by_device[router] = routes
            fibs[router] = fib
    for host in network.hosts():
        fibs[host] = Fib(_host_routes(network.config(host)))
    for switch in network.switches():
        fibs[switch] = Fib()
    return CompiledDataplane(
        fingerprint, topology_fp, device_fps, segments, fibs, ospf, bgp
    )


def _joined_adjacencies(segments, prepared):
    """Adjacency discovery by hash-join on ``(area, subnet)``.

    Output-identical to :func:`repro.control.ospf._discover_adjacencies`
    (same neighbors, edges, and pair index, in the same order) but only
    router pairs that actually share an area+subnet bucket are pairwise
    scanned, instead of all O(R^2) of them.
    """
    buckets = {}
    for name, entries in prepared.items():
        for _iface, area, net_key in entries:
            buckets.setdefault((area, net_key), set()).add(name)
    candidates = set()
    for members in buckets.values():
        if len(members) < 2:
            continue
        ordered = sorted(members)
        for i, u in enumerate(ordered):
            for v in ordered[i + 1:]:
                candidates.add((u, v))

    neighbors = []
    edges = []
    pairs = {}
    for u, v in sorted(candidates):
        pair_n, pair_e = _ospf._pair_adjacencies(
            segments, u, prepared[u], v, prepared[v]
        )
        if pair_n or pair_e:
            pairs[(u, v)] = (tuple(pair_n), tuple(pair_e))
        neighbors.extend(pair_n)
        edges.extend(pair_e)
    return neighbors, edges, pairs


def _dijkstra_shared(source, adjacency):
    """:func:`repro.control.ospf._dijkstra` over a shared pre-sorted index.

    Every source pays neither the adjacency rebuild nor the per-visit
    neighbor sort; relaxation order (and therefore every deterministic
    tie-break) is unchanged because the index is pre-sorted by the same
    ``(cost, neighbor)`` key.
    """
    dist = {source: 0}
    first_hop = {}
    heap = [(0, source, None)]
    visited = set()
    while heap:
        d, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if hop is not None:
            first_hop[node] = hop
        for neighbor, cost, iface_u, iface_v in adjacency.get(node, ()):
            candidate = d + cost
            if candidate < dist.get(neighbor, _ospf._INF):
                dist[neighbor] = candidate
                next_hop = hop if hop is not None else (iface_u, iface_v)
                heapq.heappush(heap, (candidate, neighbor, next_hop))
    return dist, first_hop


def _ospf_routes_grouped(config, router, dist, first_hop, grouped_ads,
                         hop_cache):
    """:func:`repro.control.ospf._routes_for`, advertiser-grouped.

    Identical winners in identical order: the grouped iteration visits
    advertisements in exactly the flat-list sequence (the flat list is a
    per-advertiser concatenation), the ranking tuple is the same
    ``(metric, str(next_hop))``, and the first-wins strict-< tie-break is
    unchanged. The per-advertiser distance/next-hop resolution is hoisted
    out of the inner loop, and the winner's next-hop ``IPv4Address`` is the
    advertiser's cached object instead of a fresh construction per route
    (``IPv4Interface.ip`` builds a new object every access — at mega-scale
    that was a quarter of route materialization). Returns ``(routes,
    keys)`` with ``keys[i]`` the ``(network_int, prefixlen)`` of
    ``routes[i]``, which FIB assembly reuses instead of re-deriving.
    """
    local_prefixes = _ospf._local_prefix_keys(config)
    best = {}
    best_get = best.get
    for advertiser, ads in grouped_ads:
        if advertiser == router:
            continue
        if advertiser not in dist or advertiser not in first_hop:
            continue
        out_iface, remote_iface = first_hop[advertiser]
        # Interface configs are stable for the compile's lifetime and shared
        # across every source's SPF tree, so the next-hop address and its
        # string form are cached per interface identity rather than being
        # re-derived per (source, advertiser) pair.
        hop = hop_cache.get(id(remote_iface))
        if hop is None:
            hop_addr = remote_iface.address.ip
            hop = (hop_addr, str(hop_addr))
            hop_cache[id(remote_iface)] = hop
        hop_addr, hop_ip = hop
        base_dist = dist[advertiser]
        for prefix, key, _advertiser, advertiser_cost in ads:
            if key in local_prefixes:
                continue
            rank = (base_dist + advertiser_cost, hop_ip)
            current = best_get(key)
            if current is None or rank < current[0]:
                best[key] = (rank, prefix, out_iface, hop_addr)
    routes = [
        Route(
            prefix=prefix,
            protocol="ospf",
            out_interface=out_iface.name,
            next_hop=hop_addr,
            metric=rank[0],
            distance=_OSPF_DISTANCE,
        )
        for (rank, prefix, out_iface, hop_addr) in best.values()
    ]
    return routes, list(best.keys())


def _merged_fib(config, bgp_routes, ospf_routes, ospf_keys, sort_pos):
    """The router's FIB, identical to ``Fib(select_best_routes(...))``.

    Local candidates (connected/static/BGP) are few and go through the
    real :func:`select_best_routes`; the OSPF list — already one winner
    per prefix, with ``ospf_keys`` carrying each route's precomputed
    prefix key — seeds the per-prefix table directly. Admin distance
    ordering is preserved exactly: local candidates precede OSPF in the
    monolithic candidate list, so a local route wins ties (``<=``) while
    an OSPF route must win strictly. Canonical order comes from the shared
    ``sort_pos`` table, computed once per unique prefix network-wide.
    """
    chosen = dict(zip(ospf_keys, ospf_routes))
    local = list(_connected_routes(config))
    local.extend(_static_routes(config))
    local.extend(bgp_routes)
    for route in select_best_routes(local):
        net = route.prefix
        key = (int(net.network_address), net.prefixlen)
        current = chosen.get(key)
        if current is None or route.sort_key() <= current.sort_key():
            chosen[key] = route

    sort_pos_get = sort_pos.get
    ordered = []
    for key, route in chosen.items():
        pos = sort_pos_get(key)
        if pos is None:
            net = route.prefix
            pos = (-net.prefixlen, str(net))
            sort_pos[key] = pos
        ordered.append((pos, key, route))
    ordered.sort(key=lambda item: item[0])
    return Fib._from_canonical([(key, route) for _pos, key, route in ordered])


def _compute_shard(task, shard):
    """All of one shard's per-source work; runs in worker or parent."""
    grouped_ads = task.ads_by_component.get(shard.component, ())
    results = {}
    for router in shard.sources:
        config = task.network.config(router)
        dist, first_hop = _dijkstra_shared(router, task.adjacency)
        routes, keys = _ospf_routes_grouped(
            config, router, dist, first_hop, grouped_ads, task.hop_cache
        )
        fib = _merged_fib(
            config, task.bgp_routes.get(router, ()), routes, keys,
            task.sort_pos,
        )
        results[router] = (routes, fib)
    return results


def _run_compile_shard(index):
    """Worker entry point: compute one shard of the staged compile task."""
    task = _TASK
    return _compute_shard(task, task.plan.shards[index])


def _run_shards(task, workers):
    """Execute every shard; returns ``(results, degraded_count)``.

    One effective worker computes in-process with no pool. Otherwise
    shards fan out over a forked ``ProcessPoolExecutor``; any shard whose
    worker dies (fault-injected or real) is re-run in the parent.
    """
    results = {}
    if workers <= 1 or len(task.plan.shards) <= 1:
        for shard in task.plan.shards:
            results.update(_compute_shard(task, shard))
        return results, 0

    global _TASK
    _TASK = task
    lost = []
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = {}
            for shard in task.plan.shards:
                try:
                    _CRASH_FAULT.fire(shard=shard.index)
                except ShardWorkerError:
                    lost.append(shard)
                    continue
                futures[pool.submit(_run_compile_shard, shard.index)] = shard
            for future, shard in futures.items():
                try:
                    results.update(future.result())
                except (ShardWorkerError, BrokenProcessPool, OSError):
                    lost.append(shard)
    finally:
        _TASK = None

    for shard in lost:
        _DEGRADED.inc()
        results.update(_compute_shard(task, shard))
    return results, len(lost)


# -- sharded verify ------------------------------------------------------------


def _run_verify_slice(indexes):
    """Worker entry point: check one slice of the staged policy set."""
    dataplane, policies = _VERIFY_TASK
    analyzer = ReachabilityAnalyzer(dataplane)
    return [(index, policies[index].check(analyzer)) for index in indexes]


def sharded_verify(policies, dataplane, workers=None):
    """Verify ``policies`` against ``dataplane`` across worker processes.

    Policies are split round-robin so every worker sees a mix of cheap and
    expensive flows; results come back as picklable
    :class:`~repro.policy.model.PolicyResult` objects and are reassembled
    in policy order, so the report is indistinguishable from a serial
    :class:`~repro.policy.verification.PolicyVerifier` pass. A dying
    worker (the ``scale.shard.crash`` fault point or a broken pool) loses
    only its slice, which the parent re-checks in-process.

    Unlike the thread-pool verifier this pays a real fork per pass, so it
    is worth it only for mega-network policy sets; with one effective
    worker it degenerates to a plain serial sweep.
    """
    policies = list(policies)
    workers = min(effective_workers(workers), max(1, len(policies)))
    started = monotonic_s() if _OBS.enabled else 0.0
    report = VerificationReport()
    with obs_trace.span(
        "scale.verify", policies=len(policies), workers=workers,
    ) as vspan:
        _WORKERS.set(workers)
        if workers <= 1 or len(policies) <= 1:
            analyzer = ReachabilityAnalyzer(dataplane)
            report.results = [
                policy.check(analyzer) for policy in policies
            ]
        else:
            report.results = _verify_sliced(
                policies, dataplane, workers, vspan
            )
    if _OBS.enabled:
        _VERIFY_MS.observe((monotonic_s() - started) * 1000.0)
    return report


def _verify_sliced(policies, dataplane, workers, vspan):
    global _VERIFY_TASK
    _VERIFY_TASK = (dataplane, policies)
    results = [None] * len(policies)
    lost = []
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = {}
            for offset in range(workers):
                indexes = list(range(offset, len(policies), workers))
                if not indexes:
                    continue
                try:
                    _CRASH_FAULT.fire(verify_slice=offset)
                except ShardWorkerError:
                    lost.extend(indexes)
                    continue
                futures[pool.submit(_run_verify_slice, indexes)] = indexes
            for future, indexes in futures.items():
                try:
                    for index, result in future.result():
                        results[index] = result
                except (ShardWorkerError, BrokenProcessPool, OSError):
                    lost.extend(indexes)
    finally:
        _VERIFY_TASK = None

    if lost:
        _DEGRADED.inc()
        vspan.set(degraded=True, lost_policies=len(lost))
        analyzer = ReachabilityAnalyzer(dataplane)
        for index in sorted(lost):
            results[index] = policies[index].check(analyzer)
    return results
