"""Compile a :class:`~repro.net.network.Network` into a :class:`DataPlane`.

Route sources, merged per IOS administrative distance:

* **connected** (AD 0): every live addressed interface;
* **static** (AD from the route, default 1): installed only when the next hop
  is resolvable through a connected subnet — an unresolvable static route is
  silently not installed, exactly the IOS behaviour the ISP-reconfiguration
  scenario relies on;
* **ospf** (AD 110): from :mod:`repro.control.ospf`.

Hosts get their connected subnet plus a default route via their gateway
(when the gateway is on-subnet). Switches forward at L2 only and get an
empty FIB.
"""

import ipaddress

from repro.control.bgp import compute_bgp_routes
from repro.control.l2 import compute_segments
from repro.control.ospf import compute_ospf_routes
from repro.control.routes import Route, select_best_routes
from repro.dataplane.fib import Fib
from repro.dataplane.plane import DataPlane

_DEFAULT = ipaddress.IPv4Network("0.0.0.0/0")


def build_dataplane(network):
    """Compute L2 segments, run routing, and install per-device FIBs."""
    segments = compute_segments(network)
    ospf = compute_ospf_routes(network, segments)
    bgp = compute_bgp_routes(network, segments)

    fibs = {}
    for router in network.routers():
        candidates = []
        candidates.extend(_connected_routes(network.config(router)))
        candidates.extend(_static_routes(network.config(router)))
        candidates.extend(bgp.routes_by_device.get(router, []))
        candidates.extend(ospf.routes_by_device.get(router, []))
        fibs[router] = Fib(select_best_routes(candidates))

    for host in network.hosts():
        fibs[host] = Fib(_host_routes(network.config(host)))

    for switch in network.switches():
        fibs[switch] = Fib()

    return DataPlane(network, segments, fibs, ospf, bgp=bgp)


def _connected_routes(config):
    for iface in config.routed_interfaces():
        if iface.shutdown:
            continue
        yield Route(
            prefix=iface.address.network,
            protocol="connected",
            out_interface=iface.name,
        )


def _static_routes(config):
    for static in config.static_routes:
        out_iface = _resolving_interface(config, static.next_hop)
        if out_iface is None:
            continue  # next hop unreachable: route not installed
        yield Route(
            prefix=static.prefix,
            protocol="static",
            out_interface=out_iface.name,
            next_hop=static.next_hop,
            distance=static.distance,
        )


def _host_routes(config):
    routes = list(_connected_routes(config))
    if config.default_gateway is not None:
        out_iface = _resolving_interface(config, config.default_gateway)
        if out_iface is not None:
            routes.append(
                Route(
                    prefix=_DEFAULT,
                    protocol="static",
                    out_interface=out_iface.name,
                    next_hop=config.default_gateway,
                )
            )
    return routes


def _resolving_interface(config, next_hop):
    """The live connected interface whose subnet contains ``next_hop``."""
    for iface in config.routed_interfaces():
        if not iface.shutdown and next_hop in iface.address.network:
            return iface
    return None
