"""Compile a :class:`~repro.net.network.Network` into a :class:`DataPlane`.

Route sources, merged per IOS administrative distance:

* **connected** (AD 0): every live addressed interface;
* **static** (AD from the route, default 1): installed only when the next hop
  is resolvable through a connected subnet — an unresolvable static route is
  silently not installed, exactly the IOS behaviour the ISP-reconfiguration
  scenario relies on;
* **ospf** (AD 110): from :mod:`repro.control.ospf`.

Hosts get their connected subnet plus a default route via their gateway
(when the gateway is on-subnet). Switches forward at L2 only and get an
empty FIB.

Compilation is cached and incremental (see :mod:`repro.control.cache` and
the "Performance architecture" section of DESIGN.md): every build is keyed
by a content fingerprint of the snapshot, identical snapshots share one set
of compiled artifacts, and a build given a ``baseline`` reuses the
baseline's L2 segments, routing results, and per-device FIBs wherever the
changed configs cannot have affected them.
"""

import ipaddress

from repro.control import deps
from repro.control.bgp import compute_bgp_routes
from repro.control.cache import (
    CompiledDataplane,
    dataplane_cache,
    derived_fingerprint,
    snapshot_fingerprint,
)
from repro.control.l2 import compute_segments
from repro.control.ospf import compute_ospf_routes, incremental_ospf_routes
from repro.control.routes import Route, select_best_routes
from repro.dataplane.fib import Fib
from repro.dataplane.plane import DataPlane
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.state import STATE as _OBS
from repro.util.clock import monotonic_s

_DEFAULT = ipaddress.IPv4Network("0.0.0.0/0")

_BUILD_COLD = obs_metrics.counter(
    "dataplane.build.cold", unit="builds",
    help="from-scratch compiles (no reusable baseline artifacts)",
)
_BUILD_INCREMENTAL = obs_metrics.counter(
    "dataplane.build.incremental", unit="builds",
    help="compiles that reused baseline artifacts for unchanged devices",
)
_BUILD_SHARED = obs_metrics.counter(
    "dataplane.build.shared", unit="builds",
    help="identical-snapshot builds that shared the baseline wholesale",
)
_BUILD_MS = obs_metrics.histogram(
    "dataplane.build.ms", unit="ms",
    help="wall-clock milliseconds per compile (cache hits excluded)",
)


def build_dataplane(network, baseline=None, changed_devices=None,
                    use_cache=True, same_except=None):
    """Compute L2 segments, run routing, and install per-device FIBs.

    Keyword arguments:

    ``baseline``
        An already-compiled :class:`DataPlane` of a *semantically close*
        snapshot over the same topology (e.g. production while compiling a
        candidate). Artifacts whose inputs did not change between the
        baseline and ``network`` are reused instead of recomputed: L2
        segments when no changed device touched shutdown/addressing/
        switchport state, the OSPF and BGP runs when no changed stanza is
        routing-relevant, and each unchanged device's FIB object when its
        route set provably cannot differ. The result is byte-identical to a
        from-scratch build (property-tested in
        ``tests/control/test_incremental.py``).

    ``changed_devices``
        Optional hint naming devices the caller knows it edited. The real
        changed set is always *derived* from per-device config fingerprints
        (so a wrong hint can cause extra recomputation, never a wrong data
        plane); the hint is unioned in for devices whose edits the caller
        wants treated as dirty regardless.

    ``use_cache``
        When true (default), the process-wide compile cache is consulted
        first and populated after a miss. Two networks with equal content
        hashes share one set of compiled artifacts; the returned plane is
        always rebound to the *calling* network object.

    ``same_except``
        The caller's **assertion** that ``network`` is content-identical to
        ``baseline``'s network outside this device set (same topology
        included), letting fingerprinting re-hash only those devices
        instead of re-serializing the whole snapshot. Unlike
        ``changed_devices`` this is trusted, not verified — a false
        assertion poisons the compile cache — so pass it only for networks
        you derived from the baseline yourself (the enforcer's candidate
        copies). Requires ``baseline``; implies those devices are dirty.
    """
    artifacts_in = getattr(baseline, "artifacts", None) if baseline else None
    if same_except is not None and artifacts_in is not None:
        fingerprint, topology_fp, device_fps = derived_fingerprint(
            artifacts_in, network, same_except
        )
        if changed_devices is None:
            changed_devices = same_except
    else:
        fingerprint, topology_fp, device_fps = snapshot_fingerprint(network)
    cache = dataplane_cache() if use_cache else None
    if cache is not None:
        artifacts = cache.get(fingerprint)
        if artifacts is not None:
            return _plane(network, artifacts)
    started = monotonic_s() if _OBS.enabled else 0.0
    with obs_trace.span("dataplane.build", incremental=baseline is not None):
        if baseline is not None:
            artifacts = _incremental_compile(
                network, fingerprint, topology_fp, device_fps, baseline,
                changed_devices,
            )
        else:
            artifacts = _full_compile(
                network, fingerprint, topology_fp, device_fps
            )
    if _OBS.enabled:
        _BUILD_MS.observe((monotonic_s() - started) * 1000.0)
    if cache is not None:
        cache.put(fingerprint, artifacts)
    return _plane(network, artifacts)


def _plane(network, artifacts):
    """Bind shared compile artifacts to the calling network."""
    return DataPlane(
        network, artifacts.segments, artifacts.fibs, artifacts.ospf,
        bgp=artifacts.bgp, artifacts=artifacts,
    )


def _full_compile(network, fingerprint, topology_fp, device_fps):
    _BUILD_COLD.inc()
    segments = compute_segments(network)
    ospf = compute_ospf_routes(network, segments)
    bgp = compute_bgp_routes(network, segments)

    fibs = {}
    for router in network.routers():
        fibs[router] = _router_fib(network, router, ospf, bgp)
    for host in network.hosts():
        fibs[host] = Fib(_host_routes(network.config(host)))
    for switch in network.switches():
        fibs[switch] = Fib()
    return CompiledDataplane(
        fingerprint, topology_fp, device_fps, segments, fibs, ospf, bgp
    )


def _router_fib(network, router, ospf, bgp):
    candidates = []
    candidates.extend(_connected_routes(network.config(router)))
    candidates.extend(_static_routes(network.config(router)))
    candidates.extend(bgp.routes_by_device.get(router, []))
    candidates.extend(ospf.routes_by_device.get(router, []))
    return Fib(select_best_routes(candidates))


# -- incremental rebuild -------------------------------------------------------


def _incremental_compile(network, fingerprint, topology_fp, device_fps,
                         baseline, changed_hint):
    """Recompile only what the changed configs can have affected.

    The invalidation cone — which devices' artifacts a diff can move, stage
    by stage — is computed by :func:`repro.control.deps.invalidation_cone`;
    each of its predicates is conservative (any doubt recomputes):

    * **L2 segments** depend on interface up/down state, routed-ness, and
      switchport configuration; a change to any of those on any changed
      device recomputes the segment table, otherwise the baseline's is
      shared as-is.
    * **OSPF** depends on the segment table plus each router's OSPF process
      and its interfaces' address/cost/shutdown state. Both OSPF and BGP
      consume the segment table *only* through ``same_segment`` queries on
      router endpoint pairs, so a recomputed segment table that left the
      router-endpoint partition intact (e.g. a host moved between VLANs)
      does not invalidate either protocol run. When the partition *is*
      intact, OSPF re-runs incrementally: the dirty routers seed a delta
      propagation that reruns Dijkstra only for sources the changed edges
      can reach (:func:`repro.control.ospf.incremental_ospf_routes`).
    * **BGP** additionally depends on static routes (the "network must be in
      the RIB" origination rule) and on address ownership anywhere in the
      network (session discovery resolves neighbor addresses globally), so
      any address/shutdown edit recomputes it — but only when BGP speakers
      exist at all.
    * **FIBs** are rebuilt for changed devices, and for unchanged routers
      only when a recomputed protocol run actually produced different routes
      for them; every other device shares the baseline's Fib object (which
      downstream differential analysis exploits via identity checks).
    """
    artifacts = getattr(baseline, "artifacts", None)
    if (
        artifacts is None
        or artifacts.topology_fingerprint != topology_fp
        or set(artifacts.device_fingerprints) != set(device_fps)
    ):
        return _full_compile(network, fingerprint, topology_fp, device_fps)

    base_fps = artifacts.device_fingerprints
    changed = {name for name, fp in device_fps.items() if base_fps[name] != fp}
    if changed_hint is not None:
        changed |= set(changed_hint) & set(device_fps)
    if not changed:
        _BUILD_SHARED.inc()
        return artifacts  # identical snapshot: share everything
    _BUILD_INCREMENTAL.inc()

    base_network = baseline.network
    cone = deps.invalidation_cone(artifacts, base_network, network, changed)
    segments = cone.segments
    changed = cone.changed  # the overscope fault widens this to everything

    routers = network.routers()
    if cone.ospf_dirty:
        incremental = None
        if not cone.routing_l2_dirty and not cone.overscoped:
            incremental = incremental_ospf_routes(
                network, segments, artifacts.ospf, cone.ospf_dirty_routers
            )
        if incremental is None:
            ospf = compute_ospf_routes(network, segments)
            deps.record_spf(len(ospf._spf or ()), 0, 0)
        else:
            ospf, (spf_full, spf_delta, spf_reused) = incremental
            deps.record_spf(spf_full, spf_delta, spf_reused)
    else:
        ospf = artifacts.ospf

    bgp = (
        compute_bgp_routes(network, segments)
        if cone.bgp_dirty else artifacts.bgp
    )

    protocols_dirty = cone.ospf_dirty or cone.bgp_dirty
    fibs = {}
    rebuilt = 0
    for router in routers:
        if router not in changed and (
            not protocols_dirty
            or (
                ospf.routes_by_device.get(router, [])
                == artifacts.ospf.routes_by_device.get(router, [])
                and bgp.routes_by_device.get(router, [])
                == artifacts.bgp.routes_by_device.get(router, [])
            )
        ):
            fibs[router] = artifacts.fibs[router]
        else:
            fibs[router] = _router_fib(network, router, ospf, bgp)
            rebuilt += 1
    for host in network.hosts():
        if host in changed:
            fibs[host] = Fib(_host_routes(network.config(host)))
        else:
            fibs[host] = artifacts.fibs[host]
    for switch in network.switches():
        fibs[switch] = artifacts.fibs[switch]  # always empty at L3
    deps.record_fib_rebuilds(rebuilt)

    return CompiledDataplane(
        fingerprint, topology_fp, device_fps, segments, fibs, ospf, bgp
    )


# -- route sources -------------------------------------------------------------


def _connected_routes(config):
    for iface in config.routed_interfaces():
        if iface.shutdown:
            continue
        yield Route(
            prefix=iface.address.network,
            protocol="connected",
            out_interface=iface.name,
        )


def _static_routes(config):
    for static in config.static_routes:
        out_iface = _resolving_interface(config, static.next_hop)
        if out_iface is None:
            continue  # next hop unreachable: route not installed
        yield Route(
            prefix=static.prefix,
            protocol="static",
            out_interface=out_iface.name,
            next_hop=static.next_hop,
            distance=static.distance,
        )


def _host_routes(config):
    routes = list(_connected_routes(config))
    if config.default_gateway is not None:
        out_iface = _resolving_interface(config, config.default_gateway)
        if out_iface is not None:
            routes.append(
                Route(
                    prefix=_DEFAULT,
                    protocol="static",
                    out_interface=out_iface.name,
                    next_hop=config.default_gateway,
                )
            )
    return routes


def _resolving_interface(config, next_hop):
    """The live connected interface whose subnet contains ``next_hop``."""
    for iface in config.routed_interfaces():
        if not iface.shutdown and next_hop in iface.address.network:
            return iface
    return None
