"""Route representation and best-route selection.

Follows IOS semantics: routes to the same prefix compete on administrative
distance first, then metric; the FIB holds one winner per prefix (ties broken
deterministically on next-hop so runs are reproducible).
"""

from dataclasses import dataclass

ADMIN_DISTANCE = {
    "connected": 0,
    "static": 1,
    "bgp": 20,  # eBGP
    "ospf": 110,
}


@dataclass(frozen=True)
class Route:
    """One candidate or installed route on a device.

    ``next_hop`` is ``None`` for connected routes (the destination is on-link)
    and for host default routes pointing at the gateway interface.
    """

    prefix: object  # IPv4Network
    protocol: str
    out_interface: str
    next_hop: object = None  # IPv4Address | None
    metric: int = 0
    distance: int = None

    def __post_init__(self):
        if self.protocol not in ADMIN_DISTANCE:
            raise ValueError(f"unknown routing protocol {self.protocol!r}")
        if self.distance is None:
            object.__setattr__(self, "distance", ADMIN_DISTANCE[self.protocol])

    def sort_key(self):
        """Preference order: lower is better."""
        return (self.distance, self.metric, str(self.next_hop or ""))

    def __str__(self):
        via = f" via {self.next_hop}" if self.next_hop is not None else ""
        return (
            f"{self.protocol[0].upper()} {self.prefix}{via},"
            f" {self.out_interface} [{self.distance}/{self.metric}]"
        )


def select_best_routes(candidates):
    """One winning route per prefix, by (distance, metric, next-hop) order."""
    by_prefix = {}
    for route in candidates:
        current = by_prefix.get(route.prefix)
        if current is None or route.sort_key() < current.sort_key():
            by_prefix[route.prefix] = route
    return list(by_prefix.values())
