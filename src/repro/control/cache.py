"""Snapshot fingerprinting and the process-wide data-plane compile cache.

Every consumer of :func:`repro.control.builder.build_dataplane` — the
enforcer, policy mining, twin scoping, the attack-surface sweeps, the
benchmarks — used to recompile identical networks from scratch. A network
snapshot is fully determined by its topology and the canonical serialized
form of every device configuration (the parse/serialize round-trip is exact,
so serialized text is a faithful content key). This module content-hashes a
snapshot into a **fingerprint** and keeps a process-wide LRU of compiled
artifacts keyed on it.

Cache entries never hold a reference to the :class:`~repro.net.network.Network`
they were compiled from — callers routinely mutate configs in place, and a
mutated network must not leak into a cache hit for a different caller. On a
hit the builder *rebinds* the shared artifacts (segments, FIBs, routing
results, trace cache) to the calling network, which by fingerprint equality
is semantically identical to the one compiled.

The attached trace cache is shared across every plane rebound from the same
entry: forwarding traces are pure functions of the snapshot content, so a
trace computed while verifying one ticket is valid for every later plane
with the same fingerprint. The one caveat is inherited from the existing
snapshot contract ("the data plane is a snapshot — recompute it after
configs change"): tracing on a stale plane after mutating its network in
place was always undefined behaviour and remains so.
"""

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.config.serializer import serialize_config
from repro.obs import metrics as obs_metrics

_CACHE_HITS = obs_metrics.counter(
    "dataplane.cache.hits", unit="events",
    help="compile-cache lookups served from an existing entry",
)
_CACHE_MISSES = obs_metrics.counter(
    "dataplane.cache.misses", unit="events",
    help="compile-cache lookups that required a compile",
)
_CACHE_EVICTIONS = obs_metrics.counter(
    "dataplane.cache.evictions", unit="events",
    help="LRU entries dropped to stay under maxsize",
)


def config_fingerprint(config):
    """Content hash of one device configuration (canonical serialized form)."""
    return hashlib.sha256(serialize_config(config).encode()).hexdigest()


def snapshot_texts(network):
    """``(texts, device_fps)``: canonical serializations plus their hashes.

    One serialization pass serves both needs: ``texts`` maps device name to
    its canonical serialized config (a drift-proof snapshot callers can
    re-parse later, e.g. the session layer's semantic base), ``device_fps``
    the matching content fingerprints — identical to what
    :func:`snapshot_fingerprint` would report.
    """
    texts = {
        name: serialize_config(config)
        for name, config in network.configs.items()
    }
    device_fps = {
        name: hashlib.sha256(text.encode()).hexdigest()
        for name, text in texts.items()
    }
    return texts, device_fps


def topology_fingerprint(topology):
    """Content hash of a topology: devices, kinds, interfaces, and cables."""
    digest = hashlib.sha256()
    digest.update(topology.name.encode())
    for device in sorted(topology.devices(), key=lambda d: d.name):
        digest.update(f"|{device.name}/{device.kind.value}:".encode())
        digest.update(",".join(sorted(device.interfaces)).encode())
    links = sorted(
        tuple(sorted((end.device, end.name) for end in link.endpoints()))
        for link in topology.links()
    )
    digest.update(repr(links).encode())
    return digest.hexdigest()


def snapshot_fingerprint(network):
    """``(snapshot_fp, topology_fp, device_fps)`` content hashes of a network.

    ``device_fps`` maps device name to its per-config fingerprint; the
    snapshot fingerprint combines the topology hash with every device hash,
    so any semantic config edit or re-cabling yields a new key.
    """
    device_fps = {
        name: config_fingerprint(config)
        for name, config in network.configs.items()
    }
    topology_fp = topology_fingerprint(network.topology)
    return combine_fingerprints(topology_fp, device_fps), topology_fp, device_fps


def combine_fingerprints(topology_fp, device_fps):
    """The snapshot fingerprint for a topology hash + per-device hashes."""
    digest = hashlib.sha256()
    digest.update(topology_fp.encode())
    for name in sorted(device_fps):
        digest.update(f"|{name}={device_fps[name]}".encode())
    return digest.hexdigest()


def derived_fingerprint(baseline, network, changed_devices):
    """Fingerprints of a snapshot *derived* from an already-hashed baseline.

    ``changed_devices`` is the caller's **assertion** that ``network``'s
    configs are content-identical to the baseline's outside that set (e.g.
    the enforcer's candidate, constructed by copying production and applying
    a change set confined to those devices) and that the topology is
    unchanged. Only the named devices are re-serialized and re-hashed; a
    false assertion produces a wrong fingerprint, so this is strictly for
    callers that constructed ``network`` themselves.
    """
    device_fps = dict(baseline.device_fingerprints)
    for name in changed_devices:
        device_fps[name] = config_fingerprint(network.config(name))
    topology_fp = baseline.topology_fingerprint
    return combine_fingerprints(topology_fp, device_fps), topology_fp, device_fps


@dataclass
class CompiledDataplane:
    """The shareable artifacts of one compilation, keyed by fingerprint.

    Everything here is treated as immutable after construction except
    ``trace_cache``, which only ever grows (guarded by ``trace_lock``) and
    holds traces that are pure functions of the snapshot content,
    ``owner_cache``, which memoizes the global source-IP-owner scan
    (``src_ip -> device name or None``), and ``dead_memo``, which memoizes
    per-device dead-next-hop frozensets for the rollout health probe's
    convergence sweep. All three hold values deterministic for a
    fingerprint, so lock-free get/set races are benign.
    """

    fingerprint: str
    topology_fingerprint: str
    device_fingerprints: dict
    segments: object
    fibs: dict
    ospf: object
    bgp: object
    trace_cache: dict = field(default_factory=dict)
    trace_lock: object = field(default_factory=threading.Lock)
    owner_cache: dict = field(default_factory=dict)
    dead_memo: dict = field(default_factory=dict)


class DataplaneCache:
    """A thread-safe LRU of :class:`CompiledDataplane` keyed by fingerprint."""

    def __init__(self, maxsize=64):
        self.maxsize = maxsize
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint):
        """The cached artifacts for ``fingerprint``, or ``None``."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                _CACHE_MISSES.inc()
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            _CACHE_HITS.inc()
            return entry

    def put(self, fingerprint, artifacts):
        """Install (or refresh) the artifacts for ``fingerprint``."""
        with self._lock:
            self._entries[fingerprint] = artifacts
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                _CACHE_EVICTIONS.inc()

    def discard(self, fingerprint):
        """Drop one entry if present (used by benchmarks to force re-compiles)."""
        with self._lock:
            self._entries.pop(fingerprint, None)

    def clear(self):
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self):
        """Hit/miss/entry counts for observability and benchmark reports."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
            }

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint):
        with self._lock:
            return fingerprint in self._entries


class ShardedDataplaneCache:
    """A compile cache partitioned into content-addressed shards.

    Fingerprints are uniform (sha256), so routing each entry to shard
    ``int(fp[:8], 16) % shards`` spreads keys evenly across ``shards``
    independent :class:`DataplaneCache` instances — concurrent compilers
    (the mega-network shard workers, parallel ticket sessions) contend on
    a per-shard lock instead of one global one, and an LRU eviction in one
    shard never touches another shard's working set. The public surface
    mirrors :class:`DataplaneCache` exactly, so either can back the
    builder.
    """

    def __init__(self, shards=8, maxsize=64):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        per_shard = max(1, maxsize // shards)
        self.maxsize = per_shard * shards
        self._shards = tuple(
            DataplaneCache(maxsize=per_shard) for _ in range(shards)
        )

    def _shard(self, fingerprint):
        return self._shards[int(fingerprint[:8], 16) % len(self._shards)]

    def get(self, fingerprint):
        """The cached artifacts for ``fingerprint``, or ``None``."""
        return self._shard(fingerprint).get(fingerprint)

    def put(self, fingerprint, artifacts):
        """Install (or refresh) the artifacts for ``fingerprint``."""
        self._shard(fingerprint).put(fingerprint, artifacts)

    def discard(self, fingerprint):
        """Drop one entry if present."""
        self._shard(fingerprint).discard(fingerprint)

    def clear(self):
        """Drop every entry and reset the hit/miss counters."""
        for shard in self._shards:
            shard.clear()

    @property
    def hits(self):
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self):
        return sum(shard.misses for shard in self._shards)

    def stats(self):
        """Aggregated hit/miss/entry counts plus the shard layout."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self),
            "maxsize": self.maxsize,
            "shards": len(self._shards),
        }

    def __len__(self):
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, fingerprint):
        return fingerprint in self._shard(fingerprint)


_CACHE = DataplaneCache()

_SHARDED_CACHE = ShardedDataplaneCache()


def dataplane_cache():
    """The process-wide compile cache."""
    return _CACHE


def sharded_dataplane_cache():
    """The process-wide sharded compile cache (mega-network pipeline)."""
    return _SHARDED_CACHE


def clear_dataplane_cache():
    """Reset the process-wide compile caches (tests, benchmarks)."""
    _CACHE.clear()
    _SHARDED_CACHE.clear()
