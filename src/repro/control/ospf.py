"""OSPF route computation: adjacency discovery + Dijkstra SPF.

A faithful-enough OSPF for the scenario networks: adjacencies form between
routers whose OSPF-activated, non-passive interfaces share an L2 segment,
an IP subnet, and an area; costs come from ``ip ospf cost`` (default 1);
every activated interface's prefix is advertised (passive interfaces
advertise but do not peer — the classic LAN-facing configuration); and
``default-information originate`` injects 0.0.0.0/0. All areas share one SPF
graph (the scenario networks are single-area; inter-area distance-vector
summarisation is out of scope and documented as such).
"""

import heapq
import ipaddress
from dataclasses import dataclass, field

from repro.control.routes import Route

DEFAULT_PREFIX = ipaddress.IPv4Network("0.0.0.0/0")


@dataclass(frozen=True)
class OspfNeighbor:
    """A formed adjacency between two router interfaces."""

    local_device: str
    local_interface: str
    remote_device: str
    remote_interface: str
    area: int


@dataclass
class OspfRouteComputation:
    """Result of an OSPF run: adjacencies and per-router routes."""

    neighbors: list = field(default_factory=list)
    routes_by_device: dict = field(default_factory=dict)

    def __post_init__(self):
        # Indexed once at construction — the computation result is a
        # snapshot, and emulated "show ip ospf neighbor" hits this per call.
        self._by_local_device = {}
        for neighbor in self.neighbors:
            self._by_local_device.setdefault(neighbor.local_device, []).append(
                neighbor
            )

    def neighbors_of(self, device):
        """Adjacencies where ``device`` is the local side."""
        return list(self._by_local_device.get(device, ()))


def _ospf_interfaces(config):
    """(iface, area) pairs for every OSPF-activated interface."""
    if config.ospf is None:
        return []
    activated = []
    for iface in config.interfaces.values():
        if not config.ospf.activates(iface):
            continue
        area = next(
            net.area
            for net in config.ospf.networks
            if net.covers(iface.address)
        )
        activated.append((iface, area))
    return activated


def _interface_cost(iface):
    return iface.ospf_cost if iface.ospf_cost is not None else 1


def compute_ospf_routes(network, segments):
    """Run OSPF over ``network`` given its L2 ``segments``."""
    routers = network.routers()
    active = {name: _ospf_interfaces(network.config(name)) for name in routers}

    neighbors, edges = _discover_adjacencies(network, segments, active)
    advertisements = _collect_advertisements(network, active)

    result = OspfRouteComputation(neighbors=neighbors)
    for router in routers:
        if not active[router]:
            result.routes_by_device[router] = []
            continue
        dist, first_hop = _dijkstra(router, routers, edges)
        result.routes_by_device[router] = _routes_for(
            network, router, dist, first_hop, advertisements
        )
    return result


def _discover_adjacencies(network, segments, active):
    """All adjacencies plus the SPF edge list (u, v, cost, iface_u, iface_v)."""
    neighbors = []
    edges = []
    routers = sorted(active)
    # Pre-filter passive interfaces and pre-resolve each candidate's subnet
    # once: ``IPv4Interface.network`` constructs a fresh object per access,
    # which the quadratic pairing below would otherwise pay repeatedly.
    prepared = {}
    for router in routers:
        ospf = network.config(router).ospf
        entries = []
        for iface, area in active[router]:
            if ospf.is_passive(iface.name):
                continue
            net = iface.address.network
            entries.append(
                (iface, area, (int(net.network_address), net.prefixlen))
            )
        prepared[router] = entries
    for i, u in enumerate(routers):
        for v in routers[i + 1:]:
            for iface_u, area_u, net_u in prepared[u]:
                for iface_v, area_v, net_v in prepared[v]:
                    if area_u != area_v or net_u != net_v:
                        continue
                    if not segments.same_segment(
                        (u, iface_u.name), (v, iface_v.name)
                    ):
                        continue
                    neighbors.append(
                        OspfNeighbor(u, iface_u.name, v, iface_v.name, area_u)
                    )
                    neighbors.append(
                        OspfNeighbor(v, iface_v.name, u, iface_u.name, area_u)
                    )
                    edges.append((u, v, _interface_cost(iface_u), iface_u, iface_v))
                    edges.append((v, u, _interface_cost(iface_v), iface_v, iface_u))
    return neighbors, edges


def _collect_advertisements(network, active):
    """(prefix, prefix_key, advertiser, cost_at_advertiser) for every
    activated interface, plus default-route originations.

    ``prefix_key`` is the cheap-to-hash ``(network_int, prefixlen)`` form
    that :func:`_routes_for` uses for its per-prefix bookkeeping.
    """
    advertisements = []
    for router, ifaces in active.items():
        for iface, _area in ifaces:
            net = iface.address.network
            advertisements.append((
                net, (int(net.network_address), net.prefixlen), router,
                _interface_cost(iface),
            ))
        ospf = network.config(router).ospf
        if ospf is not None and ospf.default_information_originate and ifaces:
            advertisements.append((DEFAULT_PREFIX, (0, 0), router, 1))
    return advertisements


def _dijkstra(source, routers, edges):
    """Shortest paths from ``source``; returns (dist, first_hop).

    ``first_hop[r]`` is ``(out_interface_cfg, remote_interface_cfg)`` of the
    first SPF edge toward ``r``.
    """
    adjacency = {}
    for u, v, cost, iface_u, iface_v in edges:
        adjacency.setdefault(u, []).append((v, cost, iface_u, iface_v))

    dist = {source: 0}
    first_hop = {}
    # Heap entries carry the node name for deterministic tie-breaking.
    heap = [(0, source, None)]
    visited = set()
    while heap:
        d, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if hop is not None:
            first_hop[node] = hop
        for neighbor, cost, iface_u, iface_v in sorted(
            adjacency.get(node, []), key=lambda e: (e[1], e[0])
        ):
            candidate = d + cost
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                next_hop = hop if hop is not None else (iface_u, iface_v)
                heapq.heappush(heap, (candidate, neighbor, next_hop))
    return dist, first_hop


def _routes_for(network, router, dist, first_hop, advertisements):
    """OSPF routes installed on ``router``."""
    local_prefixes = set()
    for iface in network.config(router).routed_interfaces():
        if not iface.shutdown:
            net = iface.address.network
            local_prefixes.add((int(net.network_address), net.prefixlen))
    # Rank candidates on (metric, str(next_hop)) — equivalent to
    # Route.sort_key() since every OSPF route shares one admin distance —
    # and only materialize the winners as Route objects.
    best = {}
    for prefix, key, advertiser, advertiser_cost in advertisements:
        if advertiser == router or key in local_prefixes:
            continue
        if advertiser not in dist or advertiser not in first_hop:
            continue
        metric = dist[advertiser] + advertiser_cost
        out_iface, remote_iface = first_hop[advertiser]
        rank = (metric, str(remote_iface.address.ip))
        current = best.get(key)
        if current is None or rank < current[0]:
            best[key] = (rank, prefix, metric, out_iface, remote_iface)
    return [
        Route(
            prefix=prefix,
            protocol="ospf",
            out_interface=out_iface.name,
            next_hop=remote_iface.address.ip,
            metric=metric,
        )
        for (_rank, prefix, metric, out_iface, remote_iface) in best.values()
    ]
