"""OSPF route computation: adjacency discovery + Dijkstra SPF.

A faithful-enough OSPF for the scenario networks: adjacencies form between
routers whose OSPF-activated, non-passive interfaces share an L2 segment,
an IP subnet, and an area; costs come from ``ip ospf cost`` (default 1);
every activated interface's prefix is advertised (passive interfaces
advertise but do not peer — the classic LAN-facing configuration); and
``default-information originate`` injects 0.0.0.0/0. All areas share one SPF
graph (the scenario networks are single-area; inter-area distance-vector
summarisation is out of scope and documented as such).

Every run retains its working state (per-router adjacency preparations,
per-router advertisements, per-pair edge lists, and each source's
``(dist, first_hop)`` tree) on the result, so a later run over a slightly
different snapshot can go through :func:`incremental_ospf_routes`: recompute
only the dirty routers' inputs, diff the advertisement and edge multisets,
and rerun full Dijkstra only for sources the edge delta can actually reach
(see docs/ARCHITECTURE.md "Dependency graph & incremental SPF" for the
correctness argument). Sources untouched by the edge delta reuse their
shortest-path tree; sources untouched by both deltas reuse their baseline
route lists verbatim — which downstream FIB sharing detects by identity.
"""

import heapq
import ipaddress
from collections import Counter
from dataclasses import dataclass, field

from repro.control.routes import Route

DEFAULT_PREFIX = ipaddress.IPv4Network("0.0.0.0/0")

_INF = float("inf")


@dataclass(frozen=True)
class OspfNeighbor:
    """A formed adjacency between two router interfaces."""

    local_device: str
    local_interface: str
    remote_device: str
    remote_interface: str
    area: int


@dataclass
class OspfRouteComputation:
    """Result of an OSPF run: adjacencies and per-router routes."""

    neighbors: list = field(default_factory=list)
    routes_by_device: dict = field(default_factory=dict)

    def __post_init__(self):
        # Indexed once at construction — the computation result is a
        # snapshot, and emulated "show ip ospf neighbor" hits this per call.
        by_local = {}
        for neighbor in self.neighbors:
            by_local.setdefault(neighbor.local_device, []).append(neighbor)
        self._by_local_device = {
            device: tuple(items) for device, items in by_local.items()
        }
        # Retained working state for incremental_ospf_routes; populated by
        # compute_ospf_routes/_retain, absent on hand-built results (tests),
        # in which case the incremental path declines and the caller does a
        # full recompute.
        self._routers = None
        self._prep = None
        self._ads = None
        self._pairs = None
        self._spf = None

    def neighbors_of(self, device):
        """Adjacencies where ``device`` is the local side (memoized tuple)."""
        return self._by_local_device.get(device, ())

    def _retain(self, routers, prepared, ads_by_router, pairs, spf):
        self._routers = tuple(routers)
        self._prep = prepared
        self._ads = ads_by_router
        self._pairs = pairs
        self._spf = spf


def _ospf_interfaces(config):
    """(iface, area) pairs for every OSPF-activated interface."""
    if config.ospf is None:
        return []
    activated = []
    for iface in config.interfaces.values():
        if not config.ospf.activates(iface):
            continue
        area = next(
            net.area
            for net in config.ospf.networks
            if net.covers(iface.address)
        )
        activated.append((iface, area))
    return activated


def _interface_cost(iface):
    return iface.ospf_cost if iface.ospf_cost is not None else 1


def compute_ospf_routes(network, segments):
    """Run OSPF over ``network`` given its L2 ``segments``."""
    routers = network.routers()
    active = {name: _ospf_interfaces(network.config(name)) for name in routers}
    prepared = {
        name: _prepare_entries(network.config(name), active[name])
        for name in routers
    }
    neighbors, edges, pairs = _discover_adjacencies(segments, prepared)
    ads_by_router = {
        name: _router_advertisements(name, network.config(name), active[name])
        for name in routers
    }
    advertisements = [ad for name in routers for ad in ads_by_router[name]]

    result = OspfRouteComputation(neighbors=neighbors)
    spf = {}
    for router in routers:
        if not active[router]:
            result.routes_by_device[router] = []
            continue
        dist, first_hop = _dijkstra(router, routers, edges)
        spf[router] = (dist, first_hop)
        result.routes_by_device[router] = _routes_for(
            network, router, dist, first_hop, advertisements
        )
    result._retain(routers, prepared, ads_by_router, pairs, spf)
    return result


def incremental_ospf_routes(network, segments, baseline, dirty):
    """Re-run OSPF reusing ``baseline``'s retained state where valid.

    ``dirty`` names the routers whose OSPF-relevant config differs from the
    baseline snapshot (the cone's ``ospf_dirty_routers``); everything else
    is content-identical by fingerprint. Returns ``(result, (full, delta,
    reused))`` — the per-source outcome counts — or ``None`` when the
    baseline carries no retained state (hand-built result, different router
    set), in which case the caller must fall back to a full run.

    Per source, in decreasing reuse:

    * **reused** — no advertisement delta and no relevant edge delta: the
      baseline route-list *object* is shared (FIB sharing sees identity);
    * **delta** — the shortest-path tree is provably intact (no changed
      edge ``(u, v, cost)`` satisfies ``dist[u] + cost <= dist[v]`` on the
      old tree), so the baseline route list is patched in place: only the
      prefixes whose advertisement candidates changed are re-selected
      (:func:`_patch_routes`);
    * **full** — the source is dirty itself or the edge delta can reach its
      tree: full Dijkstra.
    """
    if baseline._spf is None:
        return None
    routers = network.routers()
    if tuple(routers) != baseline._routers:
        return None
    router_set = set(routers)
    dirty = {name for name in dirty if name in router_set}

    prepared = dict(baseline._prep)
    ads_by_router = dict(baseline._ads)
    for name in sorted(dirty):
        config = network.config(name)
        active = _ospf_interfaces(config)
        prepared[name] = _prepare_entries(config, active)
        ads_by_router[name] = _router_advertisements(name, config, active)

    # Rebuild adjacencies in exact cold order: clean pairs come from the
    # baseline verbatim, dirty-involving pairs are re-paired and their edge
    # multisets diffed. Edge identity includes interface names *and*
    # addresses — a same-cost renumbering must register as a delta or a
    # reused tree would emit a stale next hop.
    ordered = sorted(routers)
    neighbors = []
    edges = []
    pairs = {}
    changed_edges = set()
    for i, u in enumerate(ordered):
        u_dirty = u in dirty
        for v in ordered[i + 1:]:
            if u_dirty or v in dirty:
                pair_n, pair_e = _pair_adjacencies(
                    segments, u, prepared[u], v, prepared[v]
                )
                old_n, old_e = baseline._pairs.get((u, v), ((), ()))
                old_count = Counter(_edge_key(e) for e in old_e)
                new_count = Counter(_edge_key(e) for e in pair_e)
                for key in (old_count - new_count) + (new_count - old_count):
                    changed_edges.add(key[:3])  # (u, v, cost)
            else:
                pair_n, pair_e = baseline._pairs.get((u, v), ((), ()))
            if pair_n or pair_e:
                pairs[(u, v)] = (tuple(pair_n), tuple(pair_e))
            neighbors.extend(pair_n)
            edges.extend(pair_e)

    # The advertisement delta, as the prefix keys whose candidate set
    # changed: a clean source with an intact tree can only see route
    # changes for these keys, so its baseline list is *patched* instead of
    # re-selected from scratch (_patch_routes).
    affected_keys = set()
    for name in sorted(dirty):
        old_ads = Counter(baseline._ads.get(name, ()))
        new_ads = Counter(ads_by_router[name])
        for ad in (old_ads - new_ads) + (new_ads - old_ads):
            affected_keys.add(ad[1])
    ads_dirty = bool(affected_keys)
    advertisements = [ad for name in routers for ad in ads_by_router[name]]
    ads_for_affected = {key: [] for key in affected_keys}
    key_order = {}
    for index, ad in enumerate(advertisements):
        if ad[1] in ads_for_affected:
            ads_for_affected[ad[1]].append(ad)
            key_order.setdefault(ad[1], index)

    result = OspfRouteComputation(neighbors=neighbors)
    spf = {}
    full = delta = reused = 0
    for router in routers:
        if not ads_by_router[router]:
            # No activated interfaces: no ads, no routes — active-ness is
            # purely local, so other routers' changes cannot alter this.
            result.routes_by_device[router] = []
            continue
        old = None if router in dirty else baseline._spf.get(router)
        if old is None or _spf_affected(old[0], changed_edges):
            dist, first_hop = _dijkstra(router, routers, edges)
            full += 1
            spf[router] = (dist, first_hop)
            result.routes_by_device[router] = _routes_for(
                network, router, dist, first_hop, advertisements
            )
            continue
        spf[router] = old
        if not ads_dirty:
            result.routes_by_device[router] = baseline.routes_by_device[router]
            reused += 1
            continue
        delta += 1
        result.routes_by_device[router] = _patch_routes(
            network, router, old[0], old[1],
            baseline.routes_by_device[router], ads_for_affected, key_order,
        )
    result._retain(routers, prepared, ads_by_router, pairs, spf)
    return result, (full, delta, reused)


def _spf_affected(old_dist, changed_edges):
    """Whether any changed edge can perturb the tree behind ``old_dist``.

    A changed (added *or* removed) edge ``(u, v, cost)`` is relevant iff
    ``old_dist[u] + cost <= old_dist[v]``: strictly-worse edges never set a
    final distance and never win a first hop (strict-< relaxation, unique
    ``(dist, node)`` heap entries), and the ``<=`` case covers equal-cost
    edges whose presence can flip the deterministic tie-break. Edges whose
    tail is unreachable are irrelevant: any chain of new edges re-attaching
    an unreachable region is triggered by its first edge out of the
    reachable side.
    """
    for u, v, cost in changed_edges:
        if u not in old_dist:
            continue
        if old_dist[u] + cost <= old_dist.get(v, _INF):
            return True
    return False


def _edge_key(edge):
    u, v, cost, iface_u, iface_v = edge
    return (
        u, v, cost, iface_u.name, iface_v.name,
        iface_u.address, iface_v.address,
    )


def _prepare_entries(config, active):
    """Non-passive (iface, area, subnet_key) pairing candidates for one router.

    Pre-filters passive interfaces and pre-resolves each candidate's subnet
    once: ``IPv4Interface.network`` constructs a fresh object per access,
    which the quadratic pairing would otherwise pay repeatedly.
    """
    ospf = config.ospf
    entries = []
    for iface, area in active:
        if ospf.is_passive(iface.name):
            continue
        net = iface.address.network
        entries.append(
            (iface, area, (int(net.network_address), net.prefixlen))
        )
    return entries


def _pair_adjacencies(segments, u, entries_u, v, entries_v):
    """Adjacencies and SPF edges (both directions) between one router pair."""
    neighbors = []
    edges = []
    for iface_u, area_u, net_u in entries_u:
        for iface_v, area_v, net_v in entries_v:
            if area_u != area_v or net_u != net_v:
                continue
            if not segments.same_segment(
                (u, iface_u.name), (v, iface_v.name)
            ):
                continue
            neighbors.append(
                OspfNeighbor(u, iface_u.name, v, iface_v.name, area_u)
            )
            neighbors.append(
                OspfNeighbor(v, iface_v.name, u, iface_u.name, area_u)
            )
            edges.append((u, v, _interface_cost(iface_u), iface_u, iface_v))
            edges.append((v, u, _interface_cost(iface_v), iface_v, iface_u))
    return neighbors, edges


def _discover_adjacencies(segments, prepared):
    """All adjacencies, the SPF edge list, and the per-pair index.

    ``pairs`` maps ``(u, v)`` with ``u < v`` to that pair's (neighbors,
    edges) tuples — only non-empty pairs are stored — so an incremental run
    can splice clean pairs back in cold order and diff only dirty ones.
    """
    neighbors = []
    edges = []
    pairs = {}
    routers = sorted(prepared)
    for i, u in enumerate(routers):
        for v in routers[i + 1:]:
            pair_n, pair_e = _pair_adjacencies(
                segments, u, prepared[u], v, prepared[v]
            )
            if pair_n or pair_e:
                pairs[(u, v)] = (tuple(pair_n), tuple(pair_e))
            neighbors.extend(pair_n)
            edges.extend(pair_e)
    return neighbors, edges, pairs


def _router_advertisements(router, config, active):
    """(prefix, prefix_key, advertiser, cost_at_advertiser) for every
    activated interface, plus the default-route origination.

    ``prefix_key`` is the cheap-to-hash ``(network_int, prefixlen)`` form
    that :func:`_routes_for` uses for its per-prefix bookkeeping.
    """
    ads = []
    for iface, _area in active:
        net = iface.address.network
        ads.append((
            net, (int(net.network_address), net.prefixlen), router,
            _interface_cost(iface),
        ))
    ospf = config.ospf
    if ospf is not None and ospf.default_information_originate and active:
        ads.append((DEFAULT_PREFIX, (0, 0), router, 1))
    return ads


def _dijkstra(source, routers, edges):
    """Shortest paths from ``source``; returns (dist, first_hop).

    ``first_hop[r]`` is ``(out_interface_cfg, remote_interface_cfg)`` of the
    first SPF edge toward ``r``.
    """
    adjacency = {}
    for u, v, cost, iface_u, iface_v in edges:
        adjacency.setdefault(u, []).append((v, cost, iface_u, iface_v))

    dist = {source: 0}
    first_hop = {}
    # Heap entries carry the node name for deterministic tie-breaking.
    heap = [(0, source, None)]
    visited = set()
    while heap:
        d, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if hop is not None:
            first_hop[node] = hop
        for neighbor, cost, iface_u, iface_v in sorted(
            adjacency.get(node, []), key=lambda e: (e[1], e[0])
        ):
            candidate = d + cost
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                next_hop = hop if hop is not None else (iface_u, iface_v)
                heapq.heappush(heap, (candidate, neighbor, next_hop))
    return dist, first_hop


def _local_prefix_keys(config):
    """Prefix keys of the router's own live connected subnets."""
    local_prefixes = set()
    for iface in config.routed_interfaces():
        if not iface.shutdown:
            net = iface.address.network
            local_prefixes.add((int(net.network_address), net.prefixlen))
    return local_prefixes


def _routes_for(network, router, dist, first_hop, advertisements):
    """OSPF routes installed on ``router``."""
    local_prefixes = _local_prefix_keys(network.config(router))
    # Rank candidates on (metric, str(next_hop)) — equivalent to
    # Route.sort_key() since every OSPF route shares one admin distance —
    # and only materialize the winners as Route objects. The per-advertiser
    # (distance, next-hop string, hop interfaces) tuple is memoized: the
    # next-hop IP stringification otherwise dominates the whole compile.
    best = {}
    hop_rank = {}
    for prefix, key, advertiser, advertiser_cost in advertisements:
        if advertiser == router or key in local_prefixes:
            continue
        cached = hop_rank.get(advertiser)
        if cached is None:
            if advertiser not in dist or advertiser not in first_hop:
                hop_rank[advertiser] = False
                continue
            out_iface, remote_iface = first_hop[advertiser]
            cached = (
                dist[advertiser], str(remote_iface.address.ip),
                out_iface, remote_iface,
            )
            hop_rank[advertiser] = cached
        elif cached is False:
            continue
        base_dist, hop_ip, out_iface, remote_iface = cached
        metric = base_dist + advertiser_cost
        rank = (metric, hop_ip)
        current = best.get(key)
        if current is None or rank < current[0]:
            best[key] = (rank, prefix, metric, out_iface, remote_iface)
    return [
        Route(
            prefix=prefix,
            protocol="ospf",
            out_interface=out_iface.name,
            next_hop=remote_iface.address.ip,
            metric=metric,
        )
        for (_rank, prefix, metric, out_iface, remote_iface) in best.values()
    ]


def _patch_routes(network, router, dist, first_hop, base_routes,
                  ads_for_affected, key_order):
    """Patch one clean source's baseline routes against the ads delta.

    The source's tree is intact and its own config is clean, so every
    candidate's rank is what it was on the baseline run; only the prefixes
    in ``ads_for_affected`` gained or lost candidates. Winners for those
    keys are re-selected (same strict-``<`` first-wins tie-break as
    :func:`_routes_for`) and spliced into a copy of the baseline list:
    unchanged winners keep their baseline ``Route`` objects, removed keys
    drop out, new keys append in flat-advertisement order. A patch that
    changes nothing returns the baseline list *object*, which downstream
    FIB sharing detects by identity. List order can deviate from a cold
    run's insertion order when an affected prefix has several advertisers,
    but never in content — and FIB construction is order-insensitive (one
    winner per prefix, totally-ordered sort).
    """
    local_prefixes = _local_prefix_keys(network.config(router))
    hop_rank = {}

    def winner(key):
        best = None
        if key in local_prefixes:
            return None
        for prefix, _key, advertiser, advertiser_cost in ads_for_affected[key]:
            if advertiser == router:
                continue
            cached = hop_rank.get(advertiser)
            if cached is None:
                if advertiser not in dist or advertiser not in first_hop:
                    hop_rank[advertiser] = False
                    continue
                out_iface, remote_iface = first_hop[advertiser]
                cached = (
                    dist[advertiser], str(remote_iface.address.ip),
                    out_iface, remote_iface,
                )
                hop_rank[advertiser] = cached
            elif cached is False:
                continue
            base_dist, hop_ip, out_iface, remote_iface = cached
            metric = base_dist + advertiser_cost
            rank = (metric, hop_ip)
            if best is None or rank < best[0]:
                best = (rank, prefix, metric, out_iface, remote_iface)
        return best

    index_of = {}
    for index, route in enumerate(base_routes):
        net = route.prefix
        index_of[(int(net.network_address), net.prefixlen)] = index

    out = list(base_routes)
    changed = False
    removals = []
    additions = []
    for key in ads_for_affected:
        best = winner(key)
        old_index = index_of.get(key)
        if best is None:
            if old_index is not None:
                removals.append(old_index)
                changed = True
            continue
        _rank, prefix, metric, out_iface, remote_iface = best
        route = Route(
            prefix=prefix, protocol="ospf", out_interface=out_iface.name,
            next_hop=remote_iface.address.ip, metric=metric,
        )
        if old_index is not None:
            if route != base_routes[old_index]:
                out[old_index] = route
                changed = True
        else:
            additions.append((key_order[key], route))
            changed = True
    if not changed:
        return base_routes
    for index in sorted(removals, reverse=True):
        del out[index]
    out.extend(route for _order, route in sorted(additions))
    return out
