"""Control plane: compiles a :class:`~repro.net.network.Network` into a data plane.

The pipeline mirrors what Batfish does for the paper's networks:

1. :mod:`repro.control.l2` resolves switchports/VLANs into L2 broadcast
   domains (which L3 endpoints can exchange frames directly);
2. :mod:`repro.control.ospf` runs OSPF SPF over the adjacency graph;
3. :mod:`repro.control.builder` merges connected, static, and OSPF routes
   into per-device FIBs by administrative distance and metric.
"""

from repro.control.builder import build_dataplane
from repro.control.l2 import Segment, compute_segments
from repro.control.ospf import OspfRouteComputation, compute_ospf_routes
from repro.control.routes import ADMIN_DISTANCE, Route, select_best_routes

__all__ = [
    "ADMIN_DISTANCE",
    "OspfRouteComputation",
    "Route",
    "Segment",
    "build_dataplane",
    "compute_ospf_routes",
    "compute_segments",
    "select_best_routes",
]
