"""The Privilege_msp specification DSL (paper §4.1)."""

from repro.core.privilege.ast import (
    ActionPattern,
    Decision,
    PrivilegeRule,
    PrivilegeSpec,
    ResourcePattern,
)
from repro.core.privilege.generator import TASK_PROFILES, generate_privilege_spec
from repro.core.privilege.parser import dump_privilege_spec, load_privilege_spec
from repro.core.privilege.translator import policy_guard_rules

__all__ = [
    "ActionPattern",
    "Decision",
    "PrivilegeRule",
    "PrivilegeSpec",
    "ResourcePattern",
    "TASK_PROFILES",
    "dump_privilege_spec",
    "generate_privilege_spec",
    "load_privilege_spec",
    "policy_guard_rules",
]
