"""Core of the Privilege_msp DSL: patterns, rules, and evaluation.

A :class:`PrivilegeSpec` is the paper's ``Privilege_msp``: "a set of
predicates that each correspond to a specific technician action and evaluate
to true [allowed] or false [prohibited]". Rules match an **action** (the
dotted names the console and the config differ emit — ``view.route``,
``config.acl.entry``, ...) and a **resource** (``device``,
``device:interface``, ``device:acl:NAME``).

Evaluation is first-match with an explicit default (deny unless stated
otherwise) — the same order-sensitive semantics as the ACLs network
operators already reason about daily, which keeps the DSL unsurprising.
"""

from dataclasses import dataclass, field

from repro.util.errors import PrivilegeError

_ALWAYS_ALLOWED = ("mode.transition",)


def _segments_match(pattern_segments, value_segments):
    """Segment-wise match; a trailing ``*`` absorbs any remainder."""
    for index, pattern_segment in enumerate(pattern_segments):
        if pattern_segment == "*":
            # A wildcard in the last position matches the whole remainder;
            # mid-pattern it matches exactly one segment.
            if index == len(pattern_segments) - 1:
                return True
            if index >= len(value_segments):
                return False
            continue
        if index >= len(value_segments) or value_segments[index] != pattern_segment:
            return False
    return len(pattern_segments) == len(value_segments)


@dataclass(frozen=True)
class ActionPattern:
    """Matches dotted action names; ``*`` wildcards segments.

    >>> ActionPattern("config.*").matches("config.acl.entry")
    True
    >>> ActionPattern("view.route").matches("view.config")
    False
    """

    pattern: str

    def matches(self, action):
        return _segments_match(self.pattern.split("."), action.split("."))


@dataclass(frozen=True)
class ResourcePattern:
    """Matches colon-separated resources; ``*`` wildcards segments.

    >>> ResourcePattern("r1:*").matches("r1:Gi0/0")
    True
    >>> ResourcePattern("r1").matches("r1:Gi0/0")
    False
    >>> ResourcePattern("*").matches("anything:at:all")
    True
    """

    pattern: str

    def matches(self, resource):
        return _segments_match(self.pattern.split(":"), resource.split(":"))


@dataclass(frozen=True)
class PrivilegeRule:
    """One allow/deny predicate of the Privilege_msp."""

    effect: str  # "allow" | "deny"
    action: ActionPattern
    resource: ResourcePattern
    comment: str = ""

    def __post_init__(self):
        if self.effect not in ("allow", "deny"):
            raise PrivilegeError(f"unknown rule effect {self.effect!r}")

    def matches(self, action, resource):
        return self.action.matches(action) and self.resource.matches(resource)

    @classmethod
    def make(cls, effect, action, resource, comment=""):
        """Convenience constructor from plain strings."""
        return cls(
            effect=effect,
            action=ActionPattern(action),
            resource=ResourcePattern(resource),
            comment=comment,
        )

    def to_dict(self):
        data = {
            "effect": self.effect,
            "action": self.action.pattern,
            "resource": self.resource.pattern,
        }
        if self.comment:
            data["comment"] = self.comment
        return data


@dataclass(frozen=True)
class Decision:
    """The outcome of evaluating one (action, resource) pair."""

    allowed: bool
    rule: PrivilegeRule = None  # None when the default applied
    action: str = ""
    resource: str = ""

    @property
    def by_default(self):
        return self.rule is None

    def __str__(self):
        verdict = "allow" if self.allowed else "deny"
        source = "default" if self.by_default else f"rule {self.rule.to_dict()}"
        return f"{verdict} {self.action} on {self.resource} ({source})"


@dataclass
class PrivilegeSpec:
    """An ordered Privilege_msp: first matching rule wins, else the default.

    Mode transitions (entering/leaving configuration mode) are always
    allowed — they change no state and denying them would only obscure which
    concrete action was refused.
    """

    rules: list = field(default_factory=list)
    default: str = "deny"

    def __post_init__(self):
        if self.default not in ("allow", "deny"):
            raise PrivilegeError(f"unknown default effect {self.default!r}")

    def evaluate(self, action, resource):
        """First-match evaluation; returns a :class:`Decision`."""
        if action in _ALWAYS_ALLOWED:
            return Decision(True, None, action, resource)
        for rule in self.rules:
            if rule.matches(action, resource):
                return Decision(rule.effect == "allow", rule, action, resource)
        return Decision(self.default == "allow", None, action, resource)

    def allows(self, action, resource):
        """Shorthand for ``evaluate(...).allowed``."""
        return self.evaluate(action, resource).allowed

    def require(self, action, resource):
        """Raise :class:`PrivilegeError` unless allowed."""
        decision = self.evaluate(action, resource)
        if not decision.allowed:
            raise PrivilegeError(
                f"Privilege_msp denies {action} on {resource}",
                action=action,
                resource=resource,
            )
        return decision

    def add_rule(self, effect, action, resource, comment=""):
        """Append a rule (lowest precedence so far)."""
        self.rules.append(PrivilegeRule.make(effect, action, resource, comment))
        return self

    def prepend_rule(self, effect, action, resource, comment=""):
        """Insert a rule at highest precedence."""
        self.rules.insert(0, PrivilegeRule.make(effect, action, resource, comment))
        return self

    def __len__(self):
        return len(self.rules)

    @classmethod
    def allow_all(cls):
        """The unrestricted spec — the current-MSP baseline."""
        return cls(rules=[PrivilegeRule.make("allow", "*", "*", "full access")],
                   default="allow")

    @classmethod
    def deny_all(cls):
        """The empty privilege: everything refused."""
        return cls(rules=[], default="deny")
