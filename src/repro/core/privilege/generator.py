"""Task-driven Privilege_msp generation (paper challenge 1).

Hand-writing per-device predicates is "tedious and error-prone", so Heimdall
derives the specification from the ticket: the twin's scoped device set
supplies the resources, and a **task profile** supplies the action classes a
ticket of that kind legitimately needs. The result is deliberately minimal:
read-only everywhere in scope, write access only for the profile's action
classes, credentials untouchable, everything else denied by default.
"""

from repro.core.privilege.ast import PrivilegeSpec
from repro.util.errors import PrivilegeError

# Action classes a technician may need per task kind. Profiles err small:
# privilege escalation (paper §7) exists for the cases where a profile turns
# out to be too tight mid-ticket.
TASK_PROFILES = {
    "connectivity": (
        "config.interface.admin",
        "config.interface.address",
        "config.ospf.*",
        "config.bgp.*",
        "config.static_route",
        "config.default_gateway",
    ),
    "routing": (
        "config.ospf.*",
        "config.bgp.*",
        "config.static_route",
        "config.default_gateway",
    ),
    "acl": (
        "config.acl.*",
        "config.interface.acl_binding",
    ),
    "vlan": (
        "config.vlan",
        "config.interface.switchport",
        "config.interface.admin",
    ),
    "interface": (
        "config.interface.admin",
        "config.interface.address",
        "config.interface.description",
    ),
    "monitoring": (),  # read-only
}

# Which profile each standard issue class needs.
PROFILE_BY_ISSUE = {
    "ospf": "routing",
    "isp": "routing",
    "vlan": "vlan",
    "ifdown": "interface",
}


def profile_for_issue(issue):
    """The task profile for an issue, from its id prefix."""
    prefix = issue.issue_id.split(":")[0]
    return PROFILE_BY_ISSUE.get(prefix, "connectivity")


def generate_privilege_spec(scope_devices, profile, extra_rules=()):
    """Build the Privilege_msp for a ticket.

    ``scope_devices`` is the twin's device set; ``profile`` a key of
    :data:`TASK_PROFILES`; ``extra_rules`` (e.g. from
    :func:`~repro.core.privilege.translator.policy_guard_rules`) are
    prepended so they take precedence over the generated grants.
    """
    try:
        write_actions = TASK_PROFILES[profile]
    except KeyError:
        raise PrivilegeError(f"unknown task profile {profile!r}") from None

    spec = PrivilegeSpec(default="deny")

    # Guard rules first: policy-derived denials outrank task grants.
    spec.rules.extend(extra_rules)

    # Credentials are never a troubleshooting resource.
    spec.add_rule("deny", "config.credential", "*",
                  comment="credentials are never in scope")
    spec.add_rule("deny", "config.hostname", "*",
                  comment="device identity is never in scope")

    for device in sorted(scope_devices):
        spec.add_rule("allow", "view.*", f"{device}",
                      comment=f"read-only on {device}")
        spec.add_rule("allow", "probe.*", f"{device}")
        spec.add_rule("allow", "system.save", f"{device}")
        for action in write_actions:
            spec.add_rule("allow", action, f"{device}",
                          comment=f"{profile} task")
            spec.add_rule("allow", action, f"{device}:*")
    return spec


def escalate(spec, scope_devices, additional_profile):
    """Widen an existing spec with another profile's write actions (paper §7).

    Returns the number of rules added; the original deny guards keep their
    precedence, so escalation can never reach credentials or guarded
    policies.
    """
    try:
        write_actions = TASK_PROFILES[additional_profile]
    except KeyError:
        raise PrivilegeError(
            f"unknown task profile {additional_profile!r}"
        ) from None
    added = 0
    for device in sorted(scope_devices):
        for action in write_actions:
            spec.add_rule("allow", action, f"{device}",
                          comment=f"escalation: {additional_profile}")
            spec.add_rule("allow", action, f"{device}:*")
            added += 2
    return added
