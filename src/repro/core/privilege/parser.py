"""JSON front-end for the Privilege_msp DSL (paper §4.1).

The paper builds its front-end on Batfish's JSON specification style so that
admins "can specify both privileges and network policies using the same
interface". A specification document looks like::

    {
      "version": 1,
      "default": "deny",
      "rules": [
        {"effect": "allow", "action": "view.*", "resource": "r3",
         "comment": "read-only on the affected router"},
        {"effect": "allow", "action": "config.acl.entry", "resource": "r3:acl:*"}
      ],
      "policies": [ ...optional network policies, same document... ]
    }
"""

import json

from repro.core.privilege.ast import PrivilegeRule, PrivilegeSpec
from repro.policy.model import policy_from_dict
from repro.util.errors import PrivilegeError

SUPPORTED_VERSION = 1


def load_privilege_spec(document):
    """Parse a JSON text or dict into (PrivilegeSpec, [Policy]).

    Policies are optional; an empty list is returned when absent.
    """
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as exc:
            raise PrivilegeError(f"invalid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise PrivilegeError("specification must be a JSON object")

    version = document.get("version", SUPPORTED_VERSION)
    if version != SUPPORTED_VERSION:
        raise PrivilegeError(f"unsupported specification version {version!r}")

    spec = PrivilegeSpec(default=document.get("default", "deny"))
    for index, raw in enumerate(document.get("rules", [])):
        try:
            spec.rules.append(
                PrivilegeRule.make(
                    effect=raw["effect"],
                    action=raw["action"],
                    resource=raw["resource"],
                    comment=raw.get("comment", ""),
                )
            )
        except KeyError as exc:
            raise PrivilegeError(
                f"rule {index} is missing field {exc.args[0]!r}"
            ) from None

    policies = [policy_from_dict(p) for p in document.get("policies", [])]
    return spec, policies


def dump_privilege_spec(spec, policies=(), indent=2):
    """Serialise a spec (and optional policies) back to JSON text."""
    document = {
        "version": SUPPORTED_VERSION,
        "default": spec.default,
        "rules": [rule.to_dict() for rule in spec.rules],
    }
    if policies:
        document["policies"] = [policy.to_dict() for policy in policies]
    return json.dumps(document, indent=indent)
