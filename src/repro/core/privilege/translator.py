"""Translate network policies into Privilege_msp guard rules.

The paper extends Batfish "to take privileges for different network
resources as inputs as well as provide a framework for translating network
policies into our DSL". The translation implemented here protects each
policy's *enforcement points*:

* an **isolation** policy is enforced by the ACL that drops its flow — so
  editing that ACL (or the interface bindings on its device) is denied;
* a **reachability** policy depends on every device its flow traverses — so
  disruptive interface administration on those devices is denied unless the
  task profile explicitly re-allows it (guard rules are prepended, so a
  plain profile grant does NOT override them; the admin must consciously
  exempt a device).

The resulting rules go in front of the generated grants, giving the
technician freedom everywhere except where it would silently undo an
explicit security decision.
"""

from repro.core.privilege.ast import PrivilegeRule
from repro.dataplane.forwarding import Disposition
from repro.dataplane.reachability import ReachabilityAnalyzer


def policy_guard_rules(policies, dataplane, exempt_devices=()):
    """Deny rules protecting ``policies``' enforcement points.

    ``exempt_devices`` (typically the ticket's root-cause device once known,
    or devices the admin explicitly releases) are skipped so the technician
    can still fix the thing they were hired to fix.
    """
    analyzer = ReachabilityAnalyzer(dataplane)
    exempt = set(exempt_devices)
    rules = []
    seen = set()

    def add(effect, action, resource, comment):
        key = (effect, action, resource)
        if key not in seen:
            seen.add(key)
            rules.append(PrivilegeRule.make(effect, action, resource, comment))

    network = dataplane.network
    hosts = set(network.hosts())
    for policy in policies:
        trace = analyzer.trace(policy.flow)
        if policy.kind == "isolation":
            blocker = trace.last_device
            if trace.disposition not in (
                Disposition.DENIED_IN, Disposition.DENIED_OUT
            ) or blocker in exempt:
                continue
            add("deny", "config.acl.*", f"{blocker}",
                f"guards {policy.policy_id}")
            add("deny", "config.acl.*", f"{blocker}:*",
                f"guards {policy.policy_id}")
            add("deny", "config.interface.acl_binding", f"{blocker}:*",
                f"guards {policy.policy_id}")
        elif policy.kind == "reachability" and trace.success:
            # Guard the specific interfaces the live flow rides — not the
            # whole device, so restoring an unrelated (already down)
            # interface stays possible.
            for hop in trace.hops:
                if hop.device in hosts or hop.device in exempt:
                    continue
                for iface in (hop.in_interface, hop.out_interface):
                    if iface is not None:
                        add("deny", "config.interface.admin",
                            f"{hop.device}:{iface}",
                            f"transit for {policy.policy_id}")
                        add("deny", "config.interface.address",
                            f"{hop.device}:{iface}",
                            f"transit for {policy.policy_id}")
    return rules
