"""The multi-tenant admission front door over per-org session managers.

One Heimdall-as-a-service deployment serves many customer orgs. Each org
gets a fully isolated deployment — its own production network, policies,
enclave, clock, audit chain(s), approvals coordinator, and
:class:`~repro.core.sessions.SessionManager` — and the front door is the
only shared surface. Admission is **overload-safe by construction**:

* every request first resolves its org in the
  :class:`~repro.core.tenancy.TenantRegistry` and presents a capability
  token to that org's :class:`~repro.core.tenancy.TokenAuthority` (both
  fail closed);
* a per-org **token bucket** (``rate_per_s``/``burst``, refilled from the
  org's simulated clock) and an optional total-admissions **quota** bound
  the request rate;
* admitted work parks in a per-org **bounded queue** and runs on the
  org's own **bulkhead worker pool** — one tenant's storm can fill only
  its own queue and burn only its own workers, never another tenant's;
* anything over a bound is **shed explicitly** with
  :class:`~repro.util.errors.FrontDoorOverloadError` carrying a
  retry-after hint, instead of queueing into unbounded latency.

Drive it via ``Heimdall(tenants=[...]).frontdoor`` or construct it
directly from :class:`~repro.core.tenancy.TenantSpec` objects.
"""

import queue as queue_module
import threading

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.clock import monotonic_s
from repro.util.errors import (
    FrontDoorError,
    FrontDoorOverloadError,
    NoisyNeighborError,
    ReproError,
)

_ADMITTED = obs_metrics.counter(
    "frontdoor.admitted", unit="requests",
    help="requests that passed registry, token, rate, and queue gates "
         "and were enqueued on their org's bulkhead",
)
_SHED = obs_metrics.counter(
    "frontdoor.shed", unit="requests",
    help="requests refused with FrontDoorOverloadError (rate limit, "
         "quota, or bounded queue full) instead of queueing unboundedly",
)
_QUEUE_DEPTH = obs_metrics.gauge(
    "frontdoor.queue.depth", unit="requests",
    help="admitted requests currently parked across all tenant queues",
)
_QUEUE_WAIT_MS = obs_metrics.histogram(
    "frontdoor.queue.wait.ms", unit="ms",
    help="wall-clock milliseconds an admitted request waited in its "
         "org's bounded queue before a bulkhead worker picked it up",
)

_FLOOD_FAULT = faults.fault_point(
    "frontdoor.queue.flood", error=FrontDoorOverloadError,
    help="a tenant's request flood hits the bounded-queue gate; the "
         "request is shed with an explicit retry-after instead of "
         "queueing unboundedly",
)
_NOISY_FAULT = faults.fault_point(
    "frontdoor.noisy.neighbor", error=NoisyNeighborError,
    help="one tenant's request storm drains that tenant's own token "
         "bucket; its later requests shed while every other tenant's "
         "admission stays unaffected (bulkhead isolation)",
)


class TokenBucket:
    """A deterministic token bucket refilled from the org's simulated clock.

    ``try_take`` never blocks: it either spends one token or reports
    exhaustion so the caller can shed with a retry-after hint. Refill is
    a pure function of the simulated clock, so admission decisions are
    reproducible run-to-run.
    """

    def __init__(self, rate_per_s, burst, clock):
        self.rate_per_s = rate_per_s
        self.burst = burst
        self.clock = clock
        self._lock = threading.Lock()
        self._tokens = float(burst)
        self._stamp = clock.now

    def _refill(self):
        now = self.clock.now
        if now > self._stamp and self.rate_per_s > 0:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate_per_s,
            )
        self._stamp = now

    def try_take(self):
        with self._lock:
            self._refill()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def retry_after_s(self):
        """Simulated seconds until one token is available (0 if now)."""
        with self._lock:
            self._refill()
            if self._tokens >= 1.0:
                return 0.0
            if self.rate_per_s <= 0:
                return float("inf")
            return (1.0 - self._tokens) / self.rate_per_s

    def drain(self):
        """Spend every token (the injected noisy-neighbor storm)."""
        with self._lock:
            self._refill()
            self._tokens = 0.0


class Admission:
    """One admitted request's future result."""

    def __init__(self, org_id, label):
        self.org_id = org_id
        self.label = label
        self.enqueued_at = monotonic_s()
        self._done = threading.Event()
        self._result = None
        self._error = None

    def _finish(self, result=None, error=None):
        self._result = result
        self._error = error
        self._done.set()

    @property
    def done(self):
        return self._done.is_set()

    def result(self, timeout_s=120.0):
        """Block for the worker's result; re-raises the work's error."""
        if not self._done.wait(timeout_s):
            raise FrontDoorError(
                f"{self.org_id}/{self.label}: no result within "
                f"{timeout_s:g}s"
            )
        if self._error is not None:
            raise self._error
        return self._result


class Tenant:
    """One org's isolated deployment plus its admission machinery."""

    def __init__(self, spec, heimdall, manager, authority):
        self.spec = spec
        self.heimdall = heimdall
        self.manager = manager
        self.authority = authority
        self.queue = queue_module.Queue(maxsize=spec.queue_limit)
        self.bucket = TokenBucket(
            spec.rate_per_s, spec.burst, heimdall.clock
        )
        self._lock = threading.Lock()
        self.admitted = 0
        self.shed = 0
        self.workers = []

    @property
    def org_id(self):
        return self.spec.org_id


class FrontDoor:
    """Admission control in front of N isolated per-org deployments.

    Args:
        tenants: :class:`~repro.core.tenancy.TenantSpec` per org.
        on_stale: forwarded to each org's
            :class:`~repro.core.sessions.SessionManager`.
        approvals: an :class:`~repro.core.approvals.ApprovalConfig`
            applied to every org (high-risk quorum gate + break-glass
            elevation), or ``None``.
        audit_replicas / audit_quorum: per-org replicated audit trail
            knobs (chains are keyed per org either way).
    """

    def __init__(self, tenants, on_stale="rebase", approvals=None,
                 audit_replicas=0, audit_quorum=None):
        from repro.core.heimdall import Heimdall
        from repro.core.sessions import SessionManager
        from repro.core.tenancy import TenantRegistry, TokenAuthority

        specs = list(tenants)
        if not specs:
            raise FrontDoorError("front door needs at least one tenant")
        self.registry = TenantRegistry()
        self._tenants = []
        self._depth_lock = threading.Lock()
        self._depth = 0
        self._closed = False
        for spec in specs:
            heimdall = Heimdall(
                spec.network, policies=spec.policies, org_id=spec.org_id,
                approvals=approvals, audit_replicas=audit_replicas,
                audit_quorum=audit_quorum,
            )
            manager = SessionManager(heimdall, on_stale=on_stale)
            authority = TokenAuthority(
                spec.org_id, heimdall.enclave, heimdall.clock,
                audit=heimdall.audit, ttl_s=spec.token_ttl_s,
            )
            tenant = Tenant(spec, heimdall, manager, authority)
            self.registry.add(spec.org_id, tenant)
            self._tenants.append(tenant)
        for tenant in self._tenants:
            for index in range(tenant.spec.workers):
                worker = threading.Thread(
                    target=self._worker, args=(tenant,),
                    name=f"frontdoor-{tenant.org_id}-{index}", daemon=True,
                )
                tenant.workers.append(worker)
                worker.start()

    # -- operator plane --------------------------------------------------------

    def org_ids(self):
        return self.registry.org_ids()

    def deployment(self, org_id):
        """The org's :class:`Tenant` — the **service operator's** surface
        (benchmarks, chaos judges, ops tooling), not the technician's:
        technician access always goes through :meth:`admit` with a
        validated capability token."""
        return self.registry.require(org_id)

    def issue_token(self, org_id, subject, scopes=None):
        """Mint a capability token for a technician of ``org_id``."""
        tenant = self.registry.require(org_id)
        return tenant.authority.issue(
            subject,
            scopes if scopes is not None else tenant.spec.scopes,
        )

    def close(self):
        """Stop every bulkhead worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for tenant in self._tenants:
            for _ in tenant.workers:
                tenant.queue.put(None)
        for tenant in self._tenants:
            for worker in tenant.workers:
                worker.join()

    # -- admission -------------------------------------------------------------

    def admit(self, token, org_id, work, scope="session.open", label=""):
        """Admit ``work`` onto ``org_id``'s bulkhead — or refuse, typed.

        ``work`` is a callable of the org's session manager, executed by
        one of the org's own workers. The gates run in order: registry
        (fail-closed), capability token (deny-by-default, ``scope``
        required), quota, token bucket, bounded queue. Anything over a
        bound raises :class:`~repro.util.errors.FrontDoorOverloadError`
        with ``retry_after_s`` — the request is shed, never parked
        unboundedly.

        Returns:
            An :class:`Admission`; ``admission.result()`` blocks for the
            work's return value (or re-raises its error).
        """
        if self._closed:
            raise FrontDoorError("front door is closed")
        with obs_trace.span(
            "frontdoor.admit", org=org_id, label=label, scope=scope,
        ) as span:
            tenant = self.registry.require(org_id)
            tenant.authority.validate(
                token, scope, surface=f"admit:{label or scope}"
            )
            try:
                _NOISY_FAULT.fire(org=org_id)
            except NoisyNeighborError:
                # The storm drains the org's own token bucket: this
                # request (and the org's next ones, until the clock
                # refills) sheds at the rate gate below, while every
                # other org's admission budget is untouched.
                tenant.bucket.drain()
            with tenant._lock:
                quota = tenant.spec.quota
                over_quota = quota is not None and tenant.admitted >= quota
            if over_quota:
                self._shed(
                    tenant, span,
                    f"quota of {quota} admissions exhausted",
                    retry_after_s=None,
                )
            if not tenant.bucket.try_take():
                self._shed(
                    tenant, span, "rate limit exceeded",
                    retry_after_s=tenant.bucket.retry_after_s(),
                )
            try:
                _FLOOD_FAULT.fire(org=org_id)
            except FrontDoorOverloadError:
                self._shed(
                    tenant, span, "queue flood",
                    retry_after_s=self._queue_retry_after(tenant),
                )
            admission = Admission(org_id, label or scope)
            try:
                tenant.queue.put_nowait((admission, work))
            except queue_module.Full:
                self._shed(
                    tenant, span,
                    f"bounded queue full ({tenant.spec.queue_limit})",
                    retry_after_s=self._queue_retry_after(tenant),
                )
            with tenant._lock:
                tenant.admitted += 1
            with self._depth_lock:
                self._depth += 1
                _QUEUE_DEPTH.set(self._depth)
            _ADMITTED.inc()
            span.set(admitted=True)
        return admission

    def resolve_ticket(self, token, org_id, issue, script=None, label="",
                       **open_kwargs):
        """Admit a full open → fix → submit flow for ``issue``.

        Needs the ``session.submit`` scope (the flow imports changes).
        Returns the :class:`Admission` whose result is the
        :class:`~repro.core.sessions.SessionOutcome`.
        """
        fix_script = script if script is not None else issue.fix_script

        def work(manager):
            session = manager.open_ticket(issue, **open_kwargs)
            try:
                session.run_fix_script(fix_script)
            except ReproError:
                session.abandon("fix script failed")
                raise
            return session.submit()

        return self.admit(
            token, org_id, work, scope="session.submit",
            label=label or issue.issue_id,
        )

    # -- token-gated read surfaces ---------------------------------------------

    def audit_export(self, token, org_id):
        """The org's audit export — ``audit.read`` scope required."""
        tenant = self.registry.require(org_id)
        tenant.authority.validate(token, "audit.read", surface="audit.export")
        return tenant.heimdall.audit.export()

    def audit_verify(self, token, org_id):
        """Whether the org's audit chain(s) verify — ``audit.read`` scope."""
        tenant = self.registry.require(org_id)
        tenant.authority.validate(token, "audit.read", surface="audit.verify")
        return tenant.heimdall.audit.verify()

    def push_progress(self, token, org_id, session_id=None):
        """The org's wave-granular push progress — ``session.open`` scope."""
        tenant = self.registry.require(org_id)
        tenant.authority.validate(
            token, "session.open", surface="push.progress"
        )
        return tenant.manager.push_progress(session_id)

    # -- internals -------------------------------------------------------------

    def _shed(self, tenant, span, reason, retry_after_s):
        _SHED.inc()
        with tenant._lock:
            tenant.shed += 1
        span.set(shed=True, reason=reason)
        retry = (
            "" if retry_after_s is None
            else f"; retry after {retry_after_s:g}s"
        )
        raise FrontDoorOverloadError(
            f"{tenant.org_id}: load shed ({reason}){retry}",
            retry_after_s=retry_after_s,
        )

    def _queue_retry_after(self, tenant):
        depth = tenant.queue.qsize()
        rate = max(tenant.spec.rate_per_s, 1.0)
        return max(1.0, depth / rate)

    def _worker(self, tenant):
        while True:
            job = tenant.queue.get()
            if job is None:
                return
            admission, work = job
            with self._depth_lock:
                self._depth -= 1
                _QUEUE_DEPTH.set(self._depth)
            _QUEUE_WAIT_MS.observe(
                (monotonic_s() - admission.enqueued_at) * 1000.0
            )
            with obs_trace.span(
                "frontdoor.request", org=tenant.org_id,
                label=admission.label,
            ) as span:
                try:
                    admission._finish(result=work(tenant.manager))
                    span.set(ok=True)
                except Exception as exc:
                    span.set(ok=False, error=type(exc).__name__)
                    admission._finish(error=exc)
