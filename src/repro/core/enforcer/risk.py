"""Risk classification for pending change sets.

Not every verified change deserves a human quorum: a management banner
tweak and an ACL rewrite on a policy enforcement point are different
animals. The classifier scores a session's pending change set on two
signals and flags it *high-risk* when the score crosses a configurable
threshold, at which point the approvals state machine
(:mod:`repro.core.approvals`) takes over and the scheduler refuses to push
without a granted quorum.

The two signals:

1. **Config-section proximity to invariant policies** — each change is
   weighted by how close its config section
   (:func:`repro.config.semdiff.section_of`, the same section vocabulary
   the session layer classifies drift with) sits to what the mined
   policies actually enforce. ACL changes score highest (they *are* the
   enforcement mechanism for isolation policies), OSPF/BGP/static/VLAN
   changes medium (they move traffic across policy paths), interface
   state lower, device-global scalars (hostname, credentials, SNMP)
   lowest (invisible to the dataplane).
2. **Invalidation-cone size** — the fraction of the network the change
   set can influence, judged by :func:`repro.control.deps.wave_cone` on
   the production dataplane. A change whose cone covers half the estate is
   riskier than the same section edit with a single-device cone, so the
   section score is scaled by ``1 + cone_weight * cone_fraction``.

Scores are deterministic functions of the change set and the production
snapshot — same ticket, same score, run to run.
"""

from dataclasses import dataclass, field

from repro.config import semdiff
from repro.control import deps
from repro.control.builder import build_dataplane
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

_RISK_SCORE = obs_metrics.histogram(
    "enforcer.risk.score", unit="points",
    help="risk score distribution over assessed change sets",
)
_RISK_HIGH = obs_metrics.counter(
    "enforcer.risk.high", unit="change-sets",
    help="change sets classified high-risk (quorum approval required)",
)

# Config-section proximity weights (signal 1), keyed by the semdiff
# section vocabulary (:data:`repro.config.semdiff.SECTIONS`) shared with
# the session layer's drift classifier. ACLs are the policy enforcement
# mechanism itself; ospf/bgp/static/vlan steer traffic across policy
# paths; interface state can silence a path; device-global scalars
# (hostname, credentials, SNMP) never reach the dataplane.
DEFAULT_WEIGHTS = {
    "acl": 3.0,
    "ospf": 2.0,
    "bgp": 2.0,
    "static": 2.0,
    "vlan": 2.0,
    "interface": 1.0,
    "scalar": 0.5,
}


@dataclass(frozen=True)
class RiskConfig:
    """Knobs for the classifier.

    ``threshold`` is the high-risk cut-off on the final score;
    ``weights`` overrides the per-section proximity weights;
    ``cone_weight`` scales how much the invalidation-cone fraction
    amplifies the section score (0 disables signal 2).
    """

    threshold: float = 3.0
    weights: dict = field(default_factory=dict)
    cone_weight: float = 1.0

    def weight(self, section):
        if section in self.weights:
            return self.weights[section]
        return DEFAULT_WEIGHTS.get(section, 1.0)


@dataclass(frozen=True)
class RiskAssessment:
    """The classifier's verdict on one change set."""

    score: float
    threshold: float
    section_score: float
    cone: tuple  # devices the change set can influence, sorted
    cone_fraction: float
    reasons: tuple  # human-readable contributions, largest first

    @property
    def high(self):
        return self.score >= self.threshold

    def summary(self):
        level = "HIGH" if self.high else "low"
        return (
            f"risk {level}: score {self.score:.2f} "
            f"(threshold {self.threshold:.2f}), cone "
            f"{len(self.cone)} devices ({self.cone_fraction:.0%})"
        )


class RiskClassifier:
    """Scores change sets for the approvals gate."""

    def __init__(self, config=None):
        self.config = config if config is not None else RiskConfig()

    def assess(self, production, changes):
        """Score ``changes`` against ``production``; returns a
        :class:`RiskAssessment`.

        The production dataplane comes from the process-wide compile cache
        (the verifier just built it for this very snapshot), so the cone
        computation adds no compile work to the enforce path.
        """
        changes = list(changes)
        config = self.config
        with obs_trace.span("enforcer.risk", changes=len(changes)) as span:
            by_section = {}
            for change in changes:
                by_section.setdefault(
                    semdiff.section_of(change), []
                ).append(change)
            section_score = 0.0
            reasons = []
            for section in sorted(
                by_section, key=lambda s: (-config.weight(s), s)
            ):
                weight = config.weight(section)
                count = len(by_section[section])
                section_score += weight * count
                reasons.append(
                    f"{count} {section} change{'s' if count != 1 else ''} "
                    f"x {weight:g}"
                )

            if changes and config.cone_weight:
                plane = build_dataplane(production, use_cache=True)
                devices = {change.device for change in changes}
                cone = deps.wave_cone(plane, devices, changes)
                total = max(1, len(production.configs))
                cone_fraction = len(cone) / total
            else:
                cone, cone_fraction = frozenset(), 0.0
            score = section_score * (
                1.0 + config.cone_weight * cone_fraction
            )
            if cone_fraction:
                reasons.append(
                    f"invalidation cone {len(cone)}/"
                    f"{len(production.configs)} devices"
                )

            assessment = RiskAssessment(
                score=round(score, 4),
                threshold=config.threshold,
                section_score=round(section_score, 4),
                cone=tuple(sorted(cone)),
                cone_fraction=round(cone_fraction, 4),
                reasons=tuple(reasons),
            )
            _RISK_SCORE.observe(assessment.score)
            if assessment.high:
                _RISK_HIGH.inc()
            span.set(score=assessment.score, high=assessment.high)
        return assessment
