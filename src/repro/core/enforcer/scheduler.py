"""Ordered change push (paper §4.3: "updating routers in the wrong order can
result in inconsistent behavior").

The scheduler orders a verified change set into **batches by category** —
L2 substrate first, then interface state, then routing, then ACLs, then
management — so that every prerequisite a later change relies on is already
in place. Within a batch, changes touching the *same link or subnet* land
together (both sides of a renumbered link in one batch), which is what
prevents the transient blackholes a naive per-device push creates.

:meth:`ChangeScheduler.push` can verify invariant policies between batches
and report transient violations — the measurement behind ablation A2.
"""

from dataclasses import dataclass, field

from repro.config.apply import apply_changes
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

_CHANGES_COMMITTED = obs_metrics.counter(
    "enforcer.changes.committed", unit="changes",
    help="verified changes applied to production",
)
_PUSH_BATCHES = obs_metrics.counter(
    "enforcer.push.batches", unit="batches",
    help="ordered batches applied during production imports",
)

CATEGORY_ORDER = ("vlan", "l2", "interface", "routing", "acl", "mgmt", "credential")


@dataclass
class PushReport:
    """What happened during one push."""

    batches: list = field(default_factory=list)  # list[list[ConfigChange]]
    transient_violations: int = 0
    checked_states: int = 0

    @property
    def change_count(self):
        return sum(len(batch) for batch in self.batches)


class ChangeScheduler:
    """Orders and applies verified change sets."""

    def __init__(self, category_order=CATEGORY_ORDER):
        self.category_order = tuple(category_order)

    def schedule(self, changes):
        """Batches of changes in safe application order.

        The output is a permutation of the input: nothing is dropped or
        invented (property-tested).
        """
        rank = {category: i for i, category in enumerate(self.category_order)}
        batches = {}
        for change in changes:
            batches.setdefault(rank.get(change.category, len(rank)), []).append(
                change
            )
        ordered = []
        for key in sorted(batches):
            batch = sorted(
                batches[key],
                key=lambda c: (c.kind, str(c.path), c.device),
            )
            ordered.append(batch)
        return ordered

    def naive_order(self, changes):
        """The baseline: one batch per device, in diff order (ablation A2)."""
        by_device = {}
        for change in changes:
            by_device.setdefault(change.device, []).append(change)
        return [by_device[device] for device in sorted(by_device)]

    def push(self, production, changes, policy_verifier=None,
             invariant_policy_ids=None, batches=None):
        """Apply ``changes`` to ``production`` batch by batch.

        With a ``policy_verifier``, the network state after every batch is
        checked and violations of *invariant* policies (those holding both
        before and after the full push — i.e. policies no batch is supposed
        to disturb) are counted as transient.

        Args:
            production: the network to mutate, batch by batch.
            changes: the verified change set.
            policy_verifier: optional
                :class:`~repro.policy.verification.PolicyVerifier` for
                between-batch invariant checking.
            invariant_policy_ids: explicit invariant set; computed from the
                verifier when omitted.
            batches: a precomputed :meth:`schedule` result to reuse.

        Returns:
            A :class:`PushReport` with the applied batches and any
            transient violations observed between them.
        """
        report = PushReport(
            batches=batches if batches is not None else self.schedule(changes)
        )
        with obs_trace.span(
            "enforcer.push", batches=len(report.batches),
            changes=report.change_count,
        ):
            invariants = None
            if policy_verifier is not None:
                invariants = (
                    set(invariant_policy_ids)
                    if invariant_policy_ids is not None
                    else self._stable_policies(
                        policy_verifier, production, changes
                    )
                )
            for batch in report.batches:
                apply_changes(production.configs, batch)
                _PUSH_BATCHES.inc()
                _CHANGES_COMMITTED.inc(len(batch))
                if policy_verifier is not None:
                    interim = policy_verifier.verify_network(production)
                    report.checked_states += 1
                    report.transient_violations += sum(
                        1
                        for result in interim.violations
                        if result.policy.policy_id in invariants
                    )
        return report

    def _stable_policies(self, policy_verifier, production, changes):
        """Policies holding both before and after the full change set."""
        before = {
            r.policy.policy_id
            for r in policy_verifier.verify_network(production).results
            if r.holds
        }
        candidate = production.copy()
        apply_changes(candidate.configs, changes)
        after = {
            r.policy.policy_id
            for r in policy_verifier.verify_network(candidate).results
            if r.holds
        }
        return before & after
