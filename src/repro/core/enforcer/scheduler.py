"""Ordered, crash-safe change push (paper §4.3: "updating routers in the
wrong order can result in inconsistent behavior").

The scheduler orders a verified change set into **batches by category** —
L2 substrate first, then interface state, then routing, then ACLs, then
management — so that every prerequisite a later change relies on is already
in place. Within a batch, changes touching the *same link or subnet* land
together (both sides of a renumbered link in one batch), which is what
prevents the transient blackholes a naive per-device push creates.

:meth:`ChangeScheduler.push` is **transactional** (docs/ROBUSTNESS.md):
it writes a :class:`~repro.core.enforcer.journal.PushJournal` (intent →
per-batch commit markers → done) around every mutation, retries transient
device failures with bounded backoff, rolls production back to a
byte-identical pre-push snapshot on fatal failure, and — when the pusher
dies mid-push — leaves a journal that :meth:`ChangeScheduler.resume`
replays idempotently. The outcome is always one of exactly two states:
fully committed or fully rolled back.

:meth:`ChangeScheduler.push` can also verify invariant policies between
batches and report transient violations — the measurement behind ablation
A2.

With a :class:`~repro.core.enforcer.rollout.RolloutConfig` the push runs
**staged** (docs/ARCHITECTURE.md "Staged rollout"): the batches are
partitioned into per-device waves, each wave's mixed-version dataplane is
health-probed before the next wave starts, a failed wave quarantines its
offending device and rolls *every* applied wave back, and the journal's
wave markers keep :meth:`ChangeScheduler.resume` idempotent across
mid-wave crashes.
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import faults
from repro.config.apply import apply_change
from repro.control import deps
from repro.core.enforcer.journal import (
    COMMITTED,
    ROLLED_BACK,
    PushJournal,
)
from repro.core.enforcer.rollout import (
    FLAP_FAULT,
    MIDWAVE_CRASH_FAULT,
    PROBE_FAIL_FAULT,
    CircuitBreaker,
    HealthProbe,
    RolloutPlan,
    Wave,
    quarantine_devices,
    record_committed_wave,
    record_parallel_probes,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.errors import (
    ApplyError,
    ApprovalRequiredError,
    AuditWriteError,
    CircuitOpenError,
    FatalApplyError,
    HealthProbeError,
    JournalError,
    PushCrashed,
    ReproError,
    TransientDeviceError,
)
from repro.util.retry import RetryPolicy, retry_call

_CHANGES_COMMITTED = obs_metrics.counter(
    "enforcer.changes.committed", unit="changes",
    help="verified changes applied to production",
)
_PUSH_BATCHES = obs_metrics.counter(
    "enforcer.push.batches", unit="batches",
    help="ordered batches applied during production imports",
)
_PUSH_ROLLBACKS = obs_metrics.counter(
    "push.rollbacks", unit="pushes",
    help="pushes rolled back to their pre-push snapshot",
)
_PUSH_RESUMES = obs_metrics.counter(
    "push.resumes", unit="pushes",
    help="crashed pushes completed from their journal",
)
_LISTENER_ERRORS = obs_metrics.counter(
    "sessions.listener.error", unit="errors",
    help="progress-listener callbacks (wave or approval) that raised; "
         "swallowed so the push/round is never aborted by an observer",
)

# Fault points the chaos campaigns exercise (docs/ROBUSTNESS.md catalog).
# The device-apply failure modes live here, on the *production* apply path:
# the verifier simulates the same changes on candidate copies, and faults
# must never fire there.
_TRANSIENT_FAULT = faults.fault_point(
    "device.apply.transient", error=TransientDeviceError,
    help="a production device apply fails transiently (lost session, "
         "device busy); retried with bounded exponential backoff",
)
_FATAL_FAULT = faults.fault_point(
    "device.apply.fatal", error=FatalApplyError,
    help="a production device apply fails permanently (rejected config); "
         "the push rolls back to its pre-push snapshot",
)
_CRASH_FAULT = faults.fault_point(
    "push.crash", error=PushCrashed,
    help="the pusher process dies mid-batch; only the journal survives, "
         "and resume() completes the push from it",
)

CATEGORY_ORDER = ("vlan", "l2", "interface", "routing", "acl", "mgmt", "credential")


@dataclass
class PushReport:
    """What happened during one push."""

    batches: list = field(default_factory=list)  # list[list[ConfigChange]]
    transient_violations: int = 0
    checked_states: int = 0
    status: str = COMMITTED  # journal.COMMITTED | journal.ROLLED_BACK
    rollback_reason: str = ""
    resumed: bool = False
    journal: object = None  # the PushJournal, when journaling was on
    # Staged-rollout outcome (empty for monolithic pushes).
    waves: int = 0  # waves fully applied + probed healthy
    probes: list = field(default_factory=list)  # ProbeResult per probe run
    quarantined: list = field(default_factory=list)  # devices, sorted

    @property
    def change_count(self):
        return sum(len(batch) for batch in self.batches)

    @property
    def committed(self):
        return self.status == COMMITTED


class ChangeScheduler:
    """Orders and applies verified change sets, transactionally.

    ``retry_policy`` governs transient-failure retries during pushes
    (:class:`~repro.util.retry.RetryPolicy` defaults when ``None``).
    ``last_journal`` always holds the most recent push's journal — after a
    :class:`~repro.util.errors.PushCrashed` escape it is what
    :meth:`resume` recovers from.
    """

    def __init__(self, category_order=CATEGORY_ORDER, retry_policy=None):
        self.category_order = tuple(category_order)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.last_journal = None
        # Optional callback(event_dict) fired on staged-wave transitions;
        # the sessions layer registers one for wave-granular push progress.
        self.wave_listener = None
        self._push_counter = 0
        # Concurrent sessions funnel their pushes through one scheduler;
        # the id counter is the only mutation outside the (externally
        # serialized) push body, so it carries its own lock.
        self._counter_lock = threading.Lock()

    def schedule(self, changes):
        """Batches of changes in safe application order.

        The output is a permutation of the input: nothing is dropped or
        invented (property-tested).
        """
        rank = {category: i for i, category in enumerate(self.category_order)}
        batches = {}
        for change in changes:
            batches.setdefault(rank.get(change.category, len(rank)), []).append(
                change
            )
        ordered = []
        for key in sorted(batches):
            batch = sorted(
                batches[key],
                key=lambda c: (c.kind, str(c.path), c.device),
            )
            ordered.append(batch)
        return ordered

    def naive_order(self, changes):
        """The baseline: one batch per device, in diff order (ablation A2)."""
        by_device = {}
        for change in changes:
            by_device.setdefault(change.device, []).append(change)
        return [by_device[device] for device in sorted(by_device)]

    def push(self, production, changes, policy_verifier=None,
             invariant_policy_ids=None, batches=None, audit=None,
             actor="enforcer", clock=None, rollout=None, risk=None,
             approval=None):
        """Apply ``changes`` to ``production`` batch by batch, atomically.

        The push journals its intent and a pre-push snapshot first, then
        applies each batch between ``batch-start``/``batch-committed``
        markers. Transient device failures retry under the scheduler's
        retry policy; a fatal failure (or a failed audit append — audit
        failures fail *closed*) restores the snapshot and reports
        ``rolled-back``. A simulated pusher crash raises
        :class:`~repro.util.errors.PushCrashed` carrying the journal;
        :meth:`resume` finishes the push from it.

        With a ``policy_verifier``, the network state after every batch is
        checked and violations of *invariant* policies (those holding both
        before and after the full push — i.e. policies no batch is supposed
        to disturb) are counted as transient.

        Args:
            production: the network to mutate, batch by batch.
            changes: the verified change set.
            policy_verifier: optional
                :class:`~repro.policy.verification.PolicyVerifier` for
                between-batch invariant checking (monolithic pushes) or
                post-wave health probes (staged pushes).
            invariant_policy_ids: explicit invariant set; computed from the
                verifier when omitted.
            batches: a precomputed :meth:`schedule` result to reuse.
            audit: optional :class:`~repro.core.enforcer.audit.AuditTrail`;
                the commit record is written *inside* the transaction, so a
                failed append rolls the push back.
            clock: optional :class:`~repro.util.clock.SimulatedClock` to
                charge retry backoff to.
            rollout: a :class:`~repro.core.enforcer.rollout.RolloutConfig`
                to run the push **staged**: batches partitioned into
                device waves, a mixed-version health probe after each
                wave, per-device circuit breakers, quarantine + full
                rollback on wave failure. ``None`` (default) keeps the
                monolithic transactional behaviour.
            risk: the change set's
                :class:`~repro.core.enforcer.risk.RiskAssessment`; a
                high-risk assessment makes ``approval`` mandatory.
            approval: the granted
                :class:`~repro.core.approvals.ApprovalRequest` covering
                exactly this change set.

        Returns:
            A :class:`PushReport`; ``report.status`` is ``committed`` or
            ``rolled-back`` — there is no third outcome.

        Raises:
            ApprovalRequiredError: ``risk`` is high and ``approval`` is
                missing, not granted, or bound to a different change set.
                Raised *before* the journal exists — nothing was mutated,
                the push fails closed.
        """
        if risk is not None and risk.high:
            if approval is None:
                raise ApprovalRequiredError(
                    f"high-risk change set (score {risk.score:.2f} >= "
                    f"{risk.threshold:.2f}) has no quorum approval; "
                    f"refusing to push"
                )
            if not approval.granted:
                raise ApprovalRequiredError(
                    f"approval {approval.request_id} is "
                    f"{approval.state}, not granted; refusing to push"
                )
            if not approval.covers(changes):
                raise ApprovalRequiredError(
                    f"approval {approval.request_id} covers a different "
                    f"change set; refusing to push"
                )
            if clock is not None and approval.expired(clock.now):
                raise ApprovalRequiredError(
                    f"approval {approval.request_id} expired at "
                    f"{approval.expires_at:g} (now {clock.now:g}); "
                    f"refusing to push"
                )
        scheduled = batches if batches is not None else self.schedule(changes)
        with self._counter_lock:
            self._push_counter += 1
            push_id = f"PUSH-{self._push_counter:04d}"

        invariants = None
        if policy_verifier is not None:
            invariants = (
                set(invariant_policy_ids)
                if invariant_policy_ids is not None
                else self._stable_policies(policy_verifier, production, changes)
            )

        if rollout is not None:
            return self._push_staged(
                production, scheduled, push_id, rollout,
                policy_verifier=policy_verifier,
                invariants=invariants, audit=audit, actor=actor, clock=clock,
                approval=approval,
            )

        report = PushReport(batches=scheduled)
        journal = PushJournal(push_id, report.batches, production)
        if approval is not None:
            journal.mark_approval(approval.request_id)
        self.last_journal = journal
        report.journal = journal
        with obs_trace.span(
            "enforcer.push", batches=len(report.batches),
            changes=report.change_count, push_id=push_id,
        ) as push_span:
            try:
                for index, batch in enumerate(report.batches):
                    journal.mark_batch_start(index, production)
                    self._apply_batch(
                        production, batch, index=index, clock=clock,
                        actor=actor,
                    )
                    journal.mark_batch_committed(index)
                    _PUSH_BATCHES.inc()
                    _CHANGES_COMMITTED.inc(len(batch))
                    if policy_verifier is not None:
                        interim = policy_verifier.verify_network(production)
                        report.checked_states += 1
                        report.transient_violations += sum(
                            1
                            for result in interim.violations
                            if result.policy.policy_id in invariants
                        )
                self._commit(journal, report, audit=audit, actor=actor)
            except PushCrashed as crash:
                # A simulated pusher death: no in-process cleanup happens
                # (that is the point); the journal rides on the exception
                # for out-of-process recovery via resume().
                crash.journal = journal
                push_span.set(crashed=True)
                raise
            except ReproError as exc:
                self._rollback(
                    production, journal, report,
                    reason=f"{type(exc).__name__}: {exc}",
                    audit=audit, actor=actor,
                )
            push_span.set(status=report.status)
        return report

    def _push_staged(self, production, scheduled, push_id, rollout,
                     policy_verifier=None, invariants=None, audit=None,
                     actor="enforcer", clock=None, approval=None):
        """The wave-based canary push (docs/ARCHITECTURE.md "Staged rollout").

        Same two-state outcome contract as the monolithic push; the journal
        additionally carries wave/probe/quarantine markers and the report
        carries per-probe results and the quarantine list.
        """
        plan = RolloutPlan.from_batches(scheduled, rollout)
        invariants = tuple(sorted(invariants)) if invariants else ()
        report = PushReport(batches=plan.flat_batches)
        journal = PushJournal(
            push_id, plan.flat_batches, production,
            wave_plan=plan.wave_plan(), invariant_policies=invariants,
            rollout=rollout,
        )
        if approval is not None:
            journal.mark_approval(approval.request_id)
        self.last_journal = journal
        report.journal = journal
        with obs_trace.span(
            "enforcer.push", batches=len(report.batches),
            changes=report.change_count, push_id=push_id,
            waves=len(plan), staged=True,
        ) as push_span:
            probe = HealthProbe.for_push(
                production, policy_verifier=policy_verifier,
                invariant_policy_ids=invariants, config=rollout,
                devices=plan.device_order,
            )
            breaker = CircuitBreaker(rollout.flap_budget)
            applied_devices = set()
            try:
                for group in self._probe_wave_groups(plan, probe, rollout):
                    if len(group) == 1:
                        self._run_wave(
                            production, journal, group[0], probe, breaker,
                            applied_devices, report, total_waves=len(plan),
                            audit=audit, actor=actor, clock=clock,
                        )
                    else:
                        self._run_wave_group(
                            production, journal, group, probe, breaker,
                            applied_devices, report, total_waves=len(plan),
                            audit=audit, actor=actor, clock=clock,
                        )
                self._commit(journal, report, audit=audit, actor=actor)
            except PushCrashed as crash:
                crash.journal = journal
                push_span.set(crashed=True)
                raise
            except ReproError as exc:
                report.quarantined = journal.quarantined_devices()
                self._rollback(
                    production, journal, report,
                    reason=f"{type(exc).__name__}: {exc}",
                    audit=audit, actor=actor,
                )
            push_span.set(status=report.status, waves_committed=report.waves)
        return report

    def _run_wave(self, production, journal, wave, probe, breaker,
                  applied_devices, report, total_waves, audit=None,
                  actor="enforcer", clock=None):
        """Apply one wave's batches, probe the mixed-version state, commit.

        Already-committed batch indices are skipped, so the same method
        replays an interrupted wave during :meth:`resume`. A wave failure
        quarantines the offending device(s) in the journal and re-raises
        for the caller's rollback path.
        """
        with obs_trace.span(
            "rollout.wave", wave=wave.index, devices=",".join(wave.devices),
            changes=wave.change_count,
        ) as wave_span:
            journal.mark_wave_start(wave.index)
            self._notify_wave(
                actor, journal, wave, total_waves, status="started",
            )
            try:
                for batch_index, batch in zip(wave.batch_indices, wave.batches):
                    if batch_index in journal.committed:
                        continue
                    MIDWAVE_CRASH_FAULT.fire(
                        wave=wave.index, batch=batch_index,
                    )
                    journal.mark_batch_start(batch_index, production)
                    self._apply_batch(
                        production, batch, index=batch_index, clock=clock,
                        actor=actor, breaker=breaker,
                    )
                    journal.mark_batch_committed(batch_index)
                    _PUSH_BATCHES.inc()
                    _CHANGES_COMMITTED.inc(len(batch))
                applied_devices.update(wave.devices)
                result = probe.check(
                    production, applied_devices, wave.index
                )
                report.probes.append(result)
                report.checked_states += 1
                journal.mark_probe(wave.index, result.healthy, result.summary())
                if not result.healthy:
                    raise HealthProbeError(
                        f"wave {wave.index} probe failed: {result.summary()}",
                        wave_index=wave.index,
                        violations=result.violations + result.dead_routes,
                    )
                journal.mark_wave_committed(wave.index)
                record_committed_wave()
                report.waves += 1
                self._wave_audit(
                    audit, actor, journal, wave, total_waves,
                    healthy=True, detail=result.summary(),
                )
                self._notify_wave(
                    actor, journal, wave, total_waves, status="committed",
                )
                wave_span.set(status="committed")
            except PushCrashed:
                wave_span.set(status="crashed")
                raise
            except HealthProbeError as exc:
                # Probe verdicts (and the rollout.wave.probe_fail fault)
                # indict the whole wave: quarantine every device it touched.
                quarantine_devices(
                    journal, wave.devices, f"probe failed: {exc}"
                )
                self._fail_wave(
                    audit, actor, journal, wave, total_waves, exc, wave_span,
                )
                raise
            except ApplyError as exc:
                offender = exc.device if exc.device in wave.devices else None
                offenders = (offender,) if offender else wave.devices
                quarantine_devices(
                    journal, offenders, f"{type(exc).__name__}: {exc}"
                )
                self._fail_wave(
                    audit, actor, journal, wave, total_waves, exc, wave_span,
                )
                raise

    def _probe_wave_groups(self, plan, probe, rollout):
        """Partition the plan's waves into maximal probe groups.

        Consecutive waves whose dependency cones
        (:func:`repro.control.deps.wave_cone`, judged on the frozen pre-push
        baseline) are pairwise disjoint form one group: none of them can
        perturb anything another's probe examines, so their probes may run
        concurrently after the group applies. Any overlap — or
        ``probe_parallel=False`` — breaks the group, and singleton groups
        take the strict sequential apply-probe-commit path unchanged.
        """
        if (
            not getattr(rollout, "probe_parallel", False)
            or probe.baseline_plane is None
            or len(plan.waves) < 2
        ):
            return [[wave] for wave in plan.waves]
        groups = []
        current, seen = [], set()
        for wave in plan.waves:
            changes = [
                change for batch in wave.batches for change in batch
            ]
            cone = deps.wave_cone(
                probe.baseline_plane, wave.devices, changes
            )
            if current and (seen & cone):
                groups.append(current)
                current, seen = [], set()
            current.append(wave)
            seen |= cone
        if current:
            groups.append(current)
        return groups

    def _run_wave_group(self, production, journal, waves, probe, breaker,
                        applied_devices, report, total_waves, audit=None,
                        actor="enforcer", clock=None):
        """Apply a disjoint-cone wave group, then probe its waves concurrently.

        Sound because the group's cones are pairwise disjoint: a later
        wave's changes cannot reach anything an earlier wave's probe
        examines, so probing wave *k* on production with the group's later
        waves reverted to their pre-push configs is identical to the
        sequential probe of wave *k*. Verdicts are processed strictly in
        wave order — the first unhealthy wave quarantines and fails the
        push exactly as the sequential path does — and the two-state
        outcome contract is preserved: an unhealthy group rolls production
        back wholesale, applied-but-unprobed later waves included.

        The ``rollout.wave.probe_fail`` fault is fired here, per wave in
        wave order from this thread, *before* dispatch: the fault registry
        counts calls globally, so firing inside concurrent probe threads
        would land nth-based rules on a nondeterministic wave.
        """
        # Pre-apply config copies, for reconstructing each wave's probe
        # state; a device belongs to exactly one wave, so one snapshot per
        # device taken before the group applies is the pre-push content.
        pre_apply = {}
        for wave in waves:
            for device in wave.devices:
                pre_apply[device] = production.config(device).copy()
        applied_before = set(applied_devices)

        for wave in waves:
            with obs_trace.span(
                "rollout.wave", wave=wave.index,
                devices=",".join(wave.devices), changes=wave.change_count,
                phase="apply",
            ) as wave_span:
                journal.mark_wave_start(wave.index)
                self._notify_wave(
                    actor, journal, wave, total_waves, status="started",
                )
                try:
                    for batch_index, batch in zip(
                        wave.batch_indices, wave.batches
                    ):
                        if batch_index in journal.committed:
                            continue
                        MIDWAVE_CRASH_FAULT.fire(
                            wave=wave.index, batch=batch_index,
                        )
                        journal.mark_batch_start(batch_index, production)
                        self._apply_batch(
                            production, batch, index=batch_index,
                            clock=clock, actor=actor, breaker=breaker,
                        )
                        journal.mark_batch_committed(batch_index)
                        _PUSH_BATCHES.inc()
                        _CHANGES_COMMITTED.inc(len(batch))
                    wave_span.set(status="applied")
                except PushCrashed:
                    wave_span.set(status="crashed")
                    raise
                except ApplyError as exc:
                    offender = (
                        exc.device if exc.device in wave.devices else None
                    )
                    offenders = (offender,) if offender else wave.devices
                    quarantine_devices(
                        journal, offenders, f"{type(exc).__name__}: {exc}"
                    )
                    self._fail_wave(
                        audit, actor, journal, wave, total_waves, exc,
                        wave_span,
                    )
                    raise
            applied_devices.update(wave.devices)

        cumulative = {}
        running = set(applied_before)
        for wave in waves:
            running |= set(wave.devices)
            cumulative[wave.index] = set(running)
        # Devices of waves *after* each wave within the group — reverted to
        # their pre-apply configs for that wave's probe state.
        later = {}
        suffix = set()
        for wave in reversed(waves):
            later[wave.index] = set(suffix)
            suffix |= set(wave.devices)

        to_probe = []
        faulted = None
        for wave in waves:
            try:
                PROBE_FAIL_FAULT.fire(
                    wave=wave.index, applied=len(cumulative[wave.index]),
                )
            except HealthProbeError as exc:
                faulted = (wave, exc)
                break
            to_probe.append(wave)

        def run_probe(wave):
            reverted = later[wave.index]
            if reverted:
                state = production.copy_except(reverted)
                for device in reverted:
                    state.configs[device] = pre_apply[device]
            else:
                state = production
            return probe.check(
                state, cumulative[wave.index], wave.index, fire_fault=False,
            )

        results = {}
        if len(to_probe) == 1:
            results[to_probe[0].index] = run_probe(to_probe[0])
        elif to_probe:
            record_parallel_probes(len(to_probe))
            with ThreadPoolExecutor(max_workers=len(to_probe)) as pool:
                futures = {
                    wave.index: pool.submit(run_probe, wave)
                    for wave in to_probe
                }
            for wave in to_probe:
                results[wave.index] = futures[wave.index].result()

        for wave in to_probe:
            result = results[wave.index]
            with obs_trace.span(
                "rollout.wave", wave=wave.index,
                devices=",".join(wave.devices), changes=wave.change_count,
                phase="verdict",
            ) as wave_span:
                report.probes.append(result)
                report.checked_states += 1
                journal.mark_probe(
                    wave.index, result.healthy, result.summary()
                )
                if not result.healthy:
                    exc = HealthProbeError(
                        f"wave {wave.index} probe failed: "
                        f"{result.summary()}",
                        wave_index=wave.index,
                        violations=result.violations + result.dead_routes,
                    )
                    quarantine_devices(
                        journal, wave.devices, f"probe failed: {exc}"
                    )
                    self._fail_wave(
                        audit, actor, journal, wave, total_waves, exc,
                        wave_span,
                    )
                    raise exc
                journal.mark_wave_committed(wave.index)
                record_committed_wave()
                report.waves += 1
                self._wave_audit(
                    audit, actor, journal, wave, total_waves,
                    healthy=True, detail=result.summary(),
                )
                self._notify_wave(
                    actor, journal, wave, total_waves, status="committed",
                )
                wave_span.set(status="committed")

        if faulted is not None:
            wave, exc = faulted
            with obs_trace.span(
                "rollout.wave", wave=wave.index,
                devices=",".join(wave.devices), changes=wave.change_count,
                phase="verdict",
            ) as wave_span:
                quarantine_devices(
                    journal, wave.devices, f"probe failed: {exc}"
                )
                self._fail_wave(
                    audit, actor, journal, wave, total_waves, exc, wave_span,
                )
                raise exc

    def _fail_wave(self, audit, actor, journal, wave, total_waves, exc,
                   wave_span):
        """Record a failed wave's outcome (audit best-effort + span)."""
        wave_span.set(status="failed", error=type(exc).__name__)
        self._notify_wave(
            actor, journal, wave, total_waves, status="failed",
        )
        if audit is None:
            return
        try:
            self._wave_audit(
                audit, actor, journal, wave, total_waves,
                healthy=False, detail=f"{type(exc).__name__}: {exc}",
            )
        except AuditWriteError:
            # The push is already failing; the rollback record (also
            # best-effort) is the terminal audit statement.
            pass

    def _wave_audit(self, audit, actor, journal, wave, total_waves,
                    healthy, detail):
        """The MAC-covered audit record for one wave outcome.

        Healthy-wave records fail **closed** like the commit record: a
        push whose wave outcomes cannot be audited must not proceed.
        """
        if audit is None:
            return
        quarantined = journal.quarantined_devices()
        command = (
            f"wave {wave.index + 1}/{total_waves} {journal.push_id}: "
            f"{wave.change_count} changes on {','.join(wave.devices)}; "
            f"{detail}"
        )
        if quarantined:
            command += f"; quarantined: {','.join(quarantined)}"
        audit.record(
            actor=actor,
            device=",".join(wave.devices),
            command=command,
            action="enforcer.wave",
            resource=f"production:wave:{wave.index}",
            allowed=healthy,
            outcome="wave committed" if healthy else "wave failed",
        )

    def _notify_wave(self, actor, journal, wave, total_waves, status):
        """Tell the registered wave listener (the sessions layer's
        wave-granular push progress) about a wave transition."""
        listener = self.wave_listener
        if listener is None:
            return
        try:
            listener({
                "actor": actor,
                "push_id": journal.push_id,
                "wave": wave.index,
                "waves": total_waves,
                "devices": list(wave.devices),
                "status": status,
            })
        except Exception:
            # A broken progress observer must never abort the push — the
            # wave either committed or rolled back regardless of whether
            # anyone managed to watch it happen.
            _LISTENER_ERRORS.inc()

    # -- the transactional machinery ------------------------------------------

    def _apply_batch(self, production, batch, index, clock=None,
                     actor="enforcer", breaker=None):
        """Apply one batch, retrying transient per-change failures.

        Backoff jitter is keyed per ``(actor, device)``: each session's
        retry delays are a pure function of the seed and its own identity,
        so interleaved pushes from concurrent sessions see exactly the
        delays they would see running alone.

        With a ``breaker`` (staged pushes) every transient failure charges
        the device's flap budget; a spent budget raises
        :class:`~repro.util.errors.CircuitOpenError` — not retryable — so
        the wave fails fast and quarantines that device. Errors are also
        tagged with the offending device for quarantine attribution.
        """
        for change in batch:
            _CRASH_FAULT.fire(batch=index, device=change.device)

            def apply_once(change=change):
                if breaker is not None and breaker.tripped(change.device):
                    raise CircuitOpenError(
                        f"circuit open for {change.device}: flap budget "
                        f"({breaker.budget}) spent",
                        device=change.device, change=change,
                    )
                try:
                    if breaker is not None:
                        FLAP_FAULT.fire(device=change.device, kind=change.kind)
                    _TRANSIENT_FAULT.fire(device=change.device, kind=change.kind)
                    _FATAL_FAULT.fire(device=change.device, kind=change.kind)
                    apply_change(production.config(change.device), change)
                except ApplyError as exc:
                    if exc.device is None:
                        exc.device = change.device
                    if breaker is not None and isinstance(
                        exc, TransientDeviceError
                    ):
                        breaker.record(change.device)
                    raise

            retry_call(
                apply_once,
                policy=self.retry_policy,
                retryable=(TransientDeviceError,),
                clock=clock,
                step="retry backoff",
                jitter_key=f"{actor}:{change.device}",
            )

    def _commit(self, journal, report, audit=None, actor="enforcer"):
        """Write the commit audit record, then the terminal done marker.

        Audit failures fail closed: when the trail cannot record that the
        push happened, the push must not have happened — the caller's
        except-path rolls everything back.
        """
        if audit is not None:
            command = (
                f"commit {journal.push_id}: "
                f"{report.change_count} changes in "
                f"{len(report.batches)} batches"
            )
            if journal.wave_plan is not None:
                command += (
                    f" over {len(journal.wave_plan)} waves "
                    f"({report.waves} probed healthy)"
                )
            # Raises AuditWriteError when the trail is down; the caller's
            # except-path turns that into a rollback.
            audit.record(
                actor=actor,
                device="-",
                command=command,
                action="enforcer.commit",
                resource="production",
                allowed=True,
                outcome="committed",
            )
        journal.mark_done()
        report.status = COMMITTED

    def _rollback(self, production, journal, report, reason, audit=None,
                  actor="enforcer"):
        """Restore the pre-push snapshot; verify it is byte-identical."""
        with obs_trace.span("enforcer.rollback", reason=reason):
            journal.restore_snapshot(production)
            if not journal.snapshot_matches(production):
                raise JournalError(
                    f"rollback of {journal.push_id} did not restore the "
                    f"pre-push snapshot"
                )
            journal.mark_rolled_back(reason)
            report.status = ROLLED_BACK
            report.rollback_reason = reason
            _PUSH_ROLLBACKS.inc()
            if audit is not None:
                command = f"rollback {journal.push_id}: {reason}"
                quarantined = journal.quarantined_devices()
                if quarantined:
                    command += f"; quarantined: {','.join(quarantined)}"
                # Best effort: a push that rolled back *because* the audit
                # trail is down cannot audit its own rollback.
                try:
                    audit.record(
                        actor=actor,
                        device="-",
                        command=command,
                        action="enforcer.rollback",
                        resource="production",
                        allowed=False,
                        outcome="rolled back to pre-push snapshot",
                    )
                except AuditWriteError:
                    pass

    def resume(self, production, journal, audit=None, actor="enforcer",
               clock=None, policy_verifier=None):
        """Finish a crashed push from its journal, idempotently.

        Restores the pre-batch snapshot of the one possibly half-applied
        batch, then re-applies every batch without a commit marker, in
        order. Applying resume() to an already-terminal journal raises —
        recovery never double-commits.

        Approvals are deliberately **not** re-requested here: a journal
        carrying an ``approval`` marker proves the quorum round concluded
        (granted) before the first mutation, and the grant is bound to the
        journal's exact change set — replaying those batches is what the
        quorum approved.

        Staged pushes (a journal with a ``wave_plan``) resume at wave
        granularity: waves with a ``wave-committed`` marker were applied
        *and* probed healthy before the crash, so only the remaining waves
        replay — each re-probed against a pre-push baseline reconstructed
        from the journal's snapshot (pass ``policy_verifier`` so resumed
        probes re-check the journal's invariant policies, not just route
        convergence).

        Returns:
            A :class:`PushReport` with ``resumed=True``; ``status`` is
            ``committed``, or ``rolled-back`` when recovery itself hit a
            fatal failure.
        """
        if journal.terminal:
            raise JournalError(
                f"push {journal.push_id} already {journal.state}; "
                f"nothing to resume"
            )
        report = PushReport(
            batches=[list(batch) for batch in journal.batches],
            resumed=True,
            journal=journal,
        )
        self.last_journal = journal
        with obs_trace.span(
            "enforcer.resume", push_id=journal.push_id,
            committed=len(journal.committed),
            staged=journal.wave_plan is not None,
        ) as span:
            restored = journal.restore_inflight_batch(production)
            span.set(restored_batch=restored)
            try:
                if journal.wave_plan is not None:
                    self._resume_staged(
                        production, journal, report,
                        policy_verifier=policy_verifier, audit=audit,
                        actor=actor, clock=clock,
                    )
                else:
                    for index, batch in journal.uncommitted_batches():
                        journal.mark_batch_start(index, production)
                        self._apply_batch(
                            production, batch, index=index, clock=clock,
                            actor=actor,
                        )
                        journal.mark_batch_committed(index)
                        _PUSH_BATCHES.inc()
                        _CHANGES_COMMITTED.inc(len(batch))
                self._commit(journal, report, audit=audit, actor=actor)
                _PUSH_RESUMES.inc()
            except PushCrashed as crash:
                crash.journal = journal
                span.set(crashed=True)
                raise
            except ReproError as exc:
                if journal.wave_plan is not None:
                    report.quarantined = journal.quarantined_devices()
                self._rollback(
                    production, journal, report,
                    reason=f"{type(exc).__name__}: {exc}",
                    audit=audit, actor=actor,
                )
            span.set(status=report.status)
        return report

    def _resume_staged(self, production, journal, report,
                       policy_verifier=None, audit=None, actor="enforcer",
                       clock=None):
        """Replay the uncommitted waves of a crashed staged push.

        The health probe's pre-push baseline is rebuilt from the journal's
        snapshot (production already carries the committed waves, so a
        fresh copy of it would be the wrong baseline). Already-committed
        waves only contribute their devices to the probe's cumulative
        applied set; their probes passed before the crash and their audit
        records were already written.
        """
        rollout = journal.rollout
        total_waves = len(journal.wave_plan)
        report.waves = len(journal.committed_waves)
        probe = HealthProbe.for_journal(
            production, journal, policy_verifier=policy_verifier,
            config=rollout,
        )
        breaker = CircuitBreaker(
            rollout.flap_budget if rollout is not None else 3
        )
        applied_devices = set()
        for plan_entry in journal.wave_plan:
            if plan_entry["index"] in journal.committed_waves:
                applied_devices.update(plan_entry["devices"])
        for plan_entry in journal.uncommitted_waves():
            wave = Wave(
                index=plan_entry["index"],
                devices=tuple(plan_entry["devices"]),
                batches=[
                    journal.batches[i] for i in plan_entry["batch_indices"]
                ],
                batch_indices=list(plan_entry["batch_indices"]),
            )
            self._run_wave(
                production, journal, wave, probe, breaker,
                applied_devices, report, total_waves=total_waves,
                audit=audit, actor=actor, clock=clock,
            )

    def _stable_policies(self, policy_verifier, production, changes):
        """Policies holding both before and after the full change set."""
        from repro.config.apply import apply_changes

        before = {
            r.policy.policy_id
            for r in policy_verifier.verify_network(production).results
            if r.holds
        }
        candidate = production.copy()
        apply_changes(candidate.configs, changes)
        after = {
            r.policy.policy_id
            for r in policy_verifier.verify_network(candidate).results
            if r.holds
        }
        return before & after
