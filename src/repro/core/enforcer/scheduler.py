"""Ordered, crash-safe change push (paper §4.3: "updating routers in the
wrong order can result in inconsistent behavior").

The scheduler orders a verified change set into **batches by category** —
L2 substrate first, then interface state, then routing, then ACLs, then
management — so that every prerequisite a later change relies on is already
in place. Within a batch, changes touching the *same link or subnet* land
together (both sides of a renumbered link in one batch), which is what
prevents the transient blackholes a naive per-device push creates.

:meth:`ChangeScheduler.push` is **transactional** (docs/ROBUSTNESS.md):
it writes a :class:`~repro.core.enforcer.journal.PushJournal` (intent →
per-batch commit markers → done) around every mutation, retries transient
device failures with bounded backoff, rolls production back to a
byte-identical pre-push snapshot on fatal failure, and — when the pusher
dies mid-push — leaves a journal that :meth:`ChangeScheduler.resume`
replays idempotently. The outcome is always one of exactly two states:
fully committed or fully rolled back.

:meth:`ChangeScheduler.push` can also verify invariant policies between
batches and report transient violations — the measurement behind ablation
A2.
"""

import threading
from dataclasses import dataclass, field

from repro import faults
from repro.config.apply import apply_change
from repro.core.enforcer.journal import (
    COMMITTED,
    ROLLED_BACK,
    PushJournal,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.errors import (
    AuditWriteError,
    FatalApplyError,
    JournalError,
    PushCrashed,
    ReproError,
    TransientDeviceError,
)
from repro.util.retry import RetryPolicy, retry_call

_CHANGES_COMMITTED = obs_metrics.counter(
    "enforcer.changes.committed", unit="changes",
    help="verified changes applied to production",
)
_PUSH_BATCHES = obs_metrics.counter(
    "enforcer.push.batches", unit="batches",
    help="ordered batches applied during production imports",
)
_PUSH_ROLLBACKS = obs_metrics.counter(
    "push.rollbacks", unit="pushes",
    help="pushes rolled back to their pre-push snapshot",
)
_PUSH_RESUMES = obs_metrics.counter(
    "push.resumes", unit="pushes",
    help="crashed pushes completed from their journal",
)

# Fault points the chaos campaigns exercise (docs/ROBUSTNESS.md catalog).
# The device-apply failure modes live here, on the *production* apply path:
# the verifier simulates the same changes on candidate copies, and faults
# must never fire there.
_TRANSIENT_FAULT = faults.fault_point(
    "device.apply.transient", error=TransientDeviceError,
    help="a production device apply fails transiently (lost session, "
         "device busy); retried with bounded exponential backoff",
)
_FATAL_FAULT = faults.fault_point(
    "device.apply.fatal", error=FatalApplyError,
    help="a production device apply fails permanently (rejected config); "
         "the push rolls back to its pre-push snapshot",
)
_CRASH_FAULT = faults.fault_point(
    "push.crash", error=PushCrashed,
    help="the pusher process dies mid-batch; only the journal survives, "
         "and resume() completes the push from it",
)

CATEGORY_ORDER = ("vlan", "l2", "interface", "routing", "acl", "mgmt", "credential")


@dataclass
class PushReport:
    """What happened during one push."""

    batches: list = field(default_factory=list)  # list[list[ConfigChange]]
    transient_violations: int = 0
    checked_states: int = 0
    status: str = COMMITTED  # journal.COMMITTED | journal.ROLLED_BACK
    rollback_reason: str = ""
    resumed: bool = False
    journal: object = None  # the PushJournal, when journaling was on

    @property
    def change_count(self):
        return sum(len(batch) for batch in self.batches)

    @property
    def committed(self):
        return self.status == COMMITTED


class ChangeScheduler:
    """Orders and applies verified change sets, transactionally.

    ``retry_policy`` governs transient-failure retries during pushes
    (:class:`~repro.util.retry.RetryPolicy` defaults when ``None``).
    ``last_journal`` always holds the most recent push's journal — after a
    :class:`~repro.util.errors.PushCrashed` escape it is what
    :meth:`resume` recovers from.
    """

    def __init__(self, category_order=CATEGORY_ORDER, retry_policy=None):
        self.category_order = tuple(category_order)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.last_journal = None
        self._push_counter = 0
        # Concurrent sessions funnel their pushes through one scheduler;
        # the id counter is the only mutation outside the (externally
        # serialized) push body, so it carries its own lock.
        self._counter_lock = threading.Lock()

    def schedule(self, changes):
        """Batches of changes in safe application order.

        The output is a permutation of the input: nothing is dropped or
        invented (property-tested).
        """
        rank = {category: i for i, category in enumerate(self.category_order)}
        batches = {}
        for change in changes:
            batches.setdefault(rank.get(change.category, len(rank)), []).append(
                change
            )
        ordered = []
        for key in sorted(batches):
            batch = sorted(
                batches[key],
                key=lambda c: (c.kind, str(c.path), c.device),
            )
            ordered.append(batch)
        return ordered

    def naive_order(self, changes):
        """The baseline: one batch per device, in diff order (ablation A2)."""
        by_device = {}
        for change in changes:
            by_device.setdefault(change.device, []).append(change)
        return [by_device[device] for device in sorted(by_device)]

    def push(self, production, changes, policy_verifier=None,
             invariant_policy_ids=None, batches=None, audit=None,
             actor="enforcer", clock=None):
        """Apply ``changes`` to ``production`` batch by batch, atomically.

        The push journals its intent and a pre-push snapshot first, then
        applies each batch between ``batch-start``/``batch-committed``
        markers. Transient device failures retry under the scheduler's
        retry policy; a fatal failure (or a failed audit append — audit
        failures fail *closed*) restores the snapshot and reports
        ``rolled-back``. A simulated pusher crash raises
        :class:`~repro.util.errors.PushCrashed` carrying the journal;
        :meth:`resume` finishes the push from it.

        With a ``policy_verifier``, the network state after every batch is
        checked and violations of *invariant* policies (those holding both
        before and after the full push — i.e. policies no batch is supposed
        to disturb) are counted as transient.

        Args:
            production: the network to mutate, batch by batch.
            changes: the verified change set.
            policy_verifier: optional
                :class:`~repro.policy.verification.PolicyVerifier` for
                between-batch invariant checking.
            invariant_policy_ids: explicit invariant set; computed from the
                verifier when omitted.
            batches: a precomputed :meth:`schedule` result to reuse.
            audit: optional :class:`~repro.core.enforcer.audit.AuditTrail`;
                the commit record is written *inside* the transaction, so a
                failed append rolls the push back.
            clock: optional :class:`~repro.util.clock.SimulatedClock` to
                charge retry backoff to.

        Returns:
            A :class:`PushReport`; ``report.status`` is ``committed`` or
            ``rolled-back`` — there is no third outcome.
        """
        report = PushReport(
            batches=batches if batches is not None else self.schedule(changes)
        )
        with self._counter_lock:
            self._push_counter += 1
            push_id = f"PUSH-{self._push_counter:04d}"
        journal = PushJournal(push_id, report.batches, production)
        self.last_journal = journal
        report.journal = journal
        with obs_trace.span(
            "enforcer.push", batches=len(report.batches),
            changes=report.change_count, push_id=push_id,
        ) as push_span:
            invariants = None
            if policy_verifier is not None:
                invariants = (
                    set(invariant_policy_ids)
                    if invariant_policy_ids is not None
                    else self._stable_policies(
                        policy_verifier, production, changes
                    )
                )
            try:
                for index, batch in enumerate(report.batches):
                    journal.mark_batch_start(index, production)
                    self._apply_batch(
                        production, batch, index=index, clock=clock,
                        actor=actor,
                    )
                    journal.mark_batch_committed(index)
                    _PUSH_BATCHES.inc()
                    _CHANGES_COMMITTED.inc(len(batch))
                    if policy_verifier is not None:
                        interim = policy_verifier.verify_network(production)
                        report.checked_states += 1
                        report.transient_violations += sum(
                            1
                            for result in interim.violations
                            if result.policy.policy_id in invariants
                        )
                self._commit(journal, report, audit=audit, actor=actor)
            except PushCrashed as crash:
                # A simulated pusher death: no in-process cleanup happens
                # (that is the point); the journal rides on the exception
                # for out-of-process recovery via resume().
                crash.journal = journal
                push_span.set(crashed=True)
                raise
            except ReproError as exc:
                self._rollback(
                    production, journal, report,
                    reason=f"{type(exc).__name__}: {exc}",
                    audit=audit, actor=actor,
                )
            push_span.set(status=report.status)
        return report

    # -- the transactional machinery ------------------------------------------

    def _apply_batch(self, production, batch, index, clock=None,
                     actor="enforcer"):
        """Apply one batch, retrying transient per-change failures.

        Backoff jitter is keyed per ``(actor, device)``: each session's
        retry delays are a pure function of the seed and its own identity,
        so interleaved pushes from concurrent sessions see exactly the
        delays they would see running alone.
        """
        for change in batch:
            _CRASH_FAULT.fire(batch=index, device=change.device)

            def apply_once(change=change):
                _TRANSIENT_FAULT.fire(device=change.device, kind=change.kind)
                _FATAL_FAULT.fire(device=change.device, kind=change.kind)
                apply_change(production.config(change.device), change)

            retry_call(
                apply_once,
                policy=self.retry_policy,
                retryable=(TransientDeviceError,),
                clock=clock,
                step="retry backoff",
                jitter_key=f"{actor}:{change.device}",
            )

    def _commit(self, journal, report, audit=None, actor="enforcer"):
        """Write the commit audit record, then the terminal done marker.

        Audit failures fail closed: when the trail cannot record that the
        push happened, the push must not have happened — the caller's
        except-path rolls everything back.
        """
        if audit is not None:
            # Raises AuditWriteError when the trail is down; the caller's
            # except-path turns that into a rollback.
            audit.record(
                actor=actor,
                device="-",
                command=f"commit {journal.push_id}: "
                        f"{report.change_count} changes in "
                        f"{len(report.batches)} batches",
                action="enforcer.commit",
                resource="production",
                allowed=True,
                outcome="committed",
            )
        journal.mark_done()
        report.status = COMMITTED

    def _rollback(self, production, journal, report, reason, audit=None,
                  actor="enforcer"):
        """Restore the pre-push snapshot; verify it is byte-identical."""
        with obs_trace.span("enforcer.rollback", reason=reason):
            journal.restore_snapshot(production)
            if not journal.snapshot_matches(production):
                raise JournalError(
                    f"rollback of {journal.push_id} did not restore the "
                    f"pre-push snapshot"
                )
            journal.mark_rolled_back(reason)
            report.status = ROLLED_BACK
            report.rollback_reason = reason
            _PUSH_ROLLBACKS.inc()
            if audit is not None:
                # Best effort: a push that rolled back *because* the audit
                # trail is down cannot audit its own rollback.
                try:
                    audit.record(
                        actor=actor,
                        device="-",
                        command=f"rollback {journal.push_id}: {reason}",
                        action="enforcer.rollback",
                        resource="production",
                        allowed=False,
                        outcome="rolled back to pre-push snapshot",
                    )
                except AuditWriteError:
                    pass

    def resume(self, production, journal, audit=None, actor="enforcer",
               clock=None):
        """Finish a crashed push from its journal, idempotently.

        Restores the pre-batch snapshot of the one possibly half-applied
        batch, then re-applies every batch without a commit marker, in
        order. Applying resume() to an already-terminal journal raises —
        recovery never double-commits.

        Returns:
            A :class:`PushReport` with ``resumed=True``; ``status`` is
            ``committed``, or ``rolled-back`` when recovery itself hit a
            fatal failure.
        """
        if journal.terminal:
            raise JournalError(
                f"push {journal.push_id} already {journal.state}; "
                f"nothing to resume"
            )
        report = PushReport(
            batches=[list(batch) for batch in journal.batches],
            resumed=True,
            journal=journal,
        )
        self.last_journal = journal
        with obs_trace.span(
            "enforcer.resume", push_id=journal.push_id,
            committed=len(journal.committed),
        ) as span:
            restored = journal.restore_inflight_batch(production)
            span.set(restored_batch=restored)
            try:
                for index, batch in journal.uncommitted_batches():
                    journal.mark_batch_start(index, production)
                    self._apply_batch(
                        production, batch, index=index, clock=clock,
                        actor=actor,
                    )
                    journal.mark_batch_committed(index)
                    _PUSH_BATCHES.inc()
                    _CHANGES_COMMITTED.inc(len(batch))
                self._commit(journal, report, audit=audit, actor=actor)
                _PUSH_RESUMES.inc()
            except PushCrashed as crash:
                crash.journal = journal
                span.set(crashed=True)
                raise
            except ReproError as exc:
                self._rollback(
                    production, journal, report,
                    reason=f"{type(exc).__name__}: {exc}",
                    audit=audit, actor=actor,
                )
            span.set(status=report.status)
        return report

    def _stable_policies(self, policy_verifier, production, changes):
        """Policies holding both before and after the full change set."""
        from repro.config.apply import apply_changes

        before = {
            r.policy.policy_id
            for r in policy_verifier.verify_network(production).results
            if r.holds
        }
        candidate = production.copy()
        apply_changes(candidate.configs, changes)
        after = {
            r.policy.policy_id
            for r in policy_verifier.verify_network(candidate).results
            if r.holds
        }
        return before & after
