"""Simulated SGX enclave hosting the policy enforcer (paper §4.3).

The evaluation never benchmarks SGX itself; what Heimdall *uses* is the
enclave's trust properties, which this simulation reproduces functionally:

* **measurement** — the enclave's identity is a digest of the enforcer's
  actual source files, so modifying the enforcer code changes the
  measurement (as MRENCLAVE would);
* **sealing** — keys are derived from the measurement, so data sealed by one
  enforcer build cannot be unsealed by a tampered one;
* **attestation** — a report binds (measurement, nonce) under a platform
  key, standing in for the Intel attestation chain. The MSP customer
  verifies the report before trusting audit trails.
"""

import hashlib
import hmac
from dataclasses import dataclass
from pathlib import Path

# Simulated hardware root of trust (per-"CPU" key known to the verification
# service, as in EPID/DCAP attestation).
_PLATFORM_KEY = b"repro-simulated-sgx-platform-key"

_ENCLAVE_SOURCE_DIR = Path(__file__).parent


def _measure_source():
    """Digest of the enforcer package's source files (identity measurement)."""
    digest = hashlib.sha256()
    for path in sorted(_ENCLAVE_SOURCE_DIR.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class AttestationReport:
    """Evidence that a specific enclave build produced a quote for ``nonce``."""

    measurement: str
    nonce: str
    quote: str

    def __str__(self):
        return f"enclave {self.measurement[:12]}… quote over nonce {self.nonce}"


class SimulatedEnclave:
    """One loaded enclave instance."""

    def __init__(self, measurement=None):
        # Tests may inject a fake measurement to model a tampered build.
        self.measurement = measurement or _measure_source()

    def seal_key(self, key_id):
        """A key bound to this enclave's identity (MRENCLAVE sealing)."""
        return hmac.new(
            self.measurement.encode(), key_id.encode(), hashlib.sha256
        ).digest()

    def attest(self, nonce):
        """Produce an attestation report over ``nonce``."""
        quote = hmac.new(
            _PLATFORM_KEY,
            f"{self.measurement}:{nonce}".encode(),
            hashlib.sha256,
        ).hexdigest()
        return AttestationReport(
            measurement=self.measurement, nonce=nonce, quote=quote
        )


def verify_attestation(report, expected_measurement):
    """What the MSP customer runs: check quote authenticity and identity.

    Returns ``True`` only if the quote is genuine (platform key) **and** the
    measurement matches the enforcer build the customer audited.
    """
    expected_quote = hmac.new(
        _PLATFORM_KEY,
        f"{report.measurement}:{report.nonce}".encode(),
        hashlib.sha256,
    ).hexdigest()
    if not hmac.compare_digest(report.quote, expected_quote):
        return False
    return report.measurement == expected_measurement


def expected_measurement():
    """The measurement of the current (untampered) enforcer source."""
    return _measure_source()
