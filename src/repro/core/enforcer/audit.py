"""Tamper-evident audit trails (paper challenge 3).

Every mediated action — allowed or denied — becomes an :class:`AuditRecord`
in an HMAC chain keyed by an enclave-sealed key: record *i*'s MAC covers its
canonical content plus record *i−1*'s MAC, so any later modification,
deletion, or reordering breaks verification from that point on. The customer
verifies the chain with the key re-derived from the attested enclave
measurement — a tampered enforcer build derives a different key and cannot
forge history.

Records are **trace-correlated**: when the observability layer
(:mod:`repro.obs`) is enabled, each record carries the ``trace_id`` and
``span_id`` active at write time, so an auditor can walk from a signed
record to the full span tree of the session that produced it. Both ids are
covered by the MAC — rewriting the correlation is as tamper-evident as
rewriting the command itself. Timestamps come from the shared
:class:`~repro.util.clock.SimulatedClock`, never the wall clock, so audit
history is deterministic run-to-run.
"""

import hmac as hmac_module
import hashlib
import threading
from dataclasses import dataclass, field, replace

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.obs.trace import current_ids
from repro.util.errors import (
    AuditQuorumError,
    AuditReplicaCrash,
    AuditReplicaPartition,
    AuditReplicaTamper,
    AuditWriteError,
)

_APPEND_FAULT = faults.fault_point(
    "audit.append", error=AuditWriteError,
    help="the audit trail cannot be extended; dependent commits fail "
         "closed (the push rolls back rather than going unrecorded)",
)
_REPLICA_CRASH_FAULT = faults.fault_point(
    "audit.replica.crash", error=AuditReplicaCrash,
    help="one audit replica dies permanently; it misses this and every "
         "later append, and quorum must hold without it",
)
_REPLICA_TAMPER_FAULT = faults.fault_point(
    "audit.replica.tamper", error=AuditReplicaTamper,
    help="an attacker rewrites one replica's newest record without its "
         "key; that replica's own HMAC chain breaks and cross-checking "
         "flags it",
)
_REPLICA_PARTITION_FAULT = faults.fault_point(
    "audit.replica.partition", error=AuditReplicaPartition,
    help="one replica misses a single append (network partition); its "
         "chain stays self-consistent but diverges from the majority "
         "content",
)

_REPLICA_APPENDS = obs_metrics.counter(
    "audit.replica.appends", unit="records",
    help="per-replica appends fanned out by the replicated audit trail",
)
_REPLICA_FLAGGED = obs_metrics.counter(
    "audit.replica.flagged", unit="replicas",
    help="replicas flagged by a cross-check (broken chain, diverged or "
         "stale content)",
)
_REPLICA_QUORUM_LOST = obs_metrics.counter(
    "audit.replica.quorum_lost", unit="operations",
    help="appends or reads refused because no quorum of agreeing "
         "replicas remained (fail closed)",
)
_REPLICA_LIVE = obs_metrics.gauge(
    "audit.replica.live", unit="replicas",
    help="replicas still accepting appends",
)


@dataclass(frozen=True)
class AuditRecord:
    """One mediated action.

    ``trace_id``/``span_id`` are empty strings when the record was written
    outside any active span (observability disabled, or bookkeeping done
    outside the instrumented pipeline).
    """

    index: int
    timestamp: float
    actor: str
    device: str
    command: str
    action: str
    resource: str
    allowed: bool
    outcome: str
    prev_mac: str
    trace_id: str = ""
    span_id: str = ""
    mac: str = ""

    def canonical(self):
        """The byte string the MAC covers (everything except the MAC)."""
        parts = (
            self.index, self.timestamp, self.actor, self.device, self.command,
            self.action, self.resource, self.allowed, self.outcome,
            self.prev_mac, self.trace_id, self.span_id,
        )
        return "|".join(repr(part) for part in parts).encode()

    def to_dict(self):
        return {
            "index": self.index,
            "timestamp": self.timestamp,
            "actor": self.actor,
            "device": self.device,
            "command": self.command,
            "action": self.action,
            "resource": self.resource,
            "allowed": self.allowed,
            "outcome": self.outcome,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "mac": self.mac,
        }


_GENESIS_MAC = "0" * 64


@dataclass
class AuditTrail:
    """An append-only, HMAC-chained action log.

    ``key_id`` names the enclave-sealed chain key; replicas of a
    :class:`ReplicatedAuditTrail` each use a distinct id, so compromising
    one replica's key forges nothing on the others.
    """

    enclave: object
    clock: object = None  # SimulatedClock | None
    records: list = field(default_factory=list)
    key_id: str = "audit-trail"

    def __post_init__(self):
        self._key = self.enclave.seal_key(self.key_id)
        # record() chains each MAC over the previous record's; two appends
        # interleaving would fork the chain (both covering the same
        # prev_mac), so the read-extend-append is one critical section.
        self._lock = threading.Lock()

    # -- writing ------------------------------------------------------------

    def record(self, actor, device, command, action, resource, allowed,
               outcome=""):
        """Append one record; returns it.

        Args:
            actor: who acted (a session id, ``"technician"``, ...).
            device: the device touched, or ``"-"`` for non-device actions.
            command: the raw command or a synthetic action summary.
            action: the classified action (``config.interface``, ...).
            resource: the classified resource the action targeted.
            allowed: the mediation verdict.
            outcome: free-form result text (``"ok"``, an error, a summary).

        Returns:
            The appended, MAC-sealed :class:`AuditRecord`. The active
            observability trace/span ids (if any) are captured implicitly.

        Raises:
            AuditWriteError: the trail could not be extended (injected via
                the ``audit.append`` fault point). Nothing is appended —
                the chain never holds a half-written record.
        """
        _APPEND_FAULT.fire(actor=actor, action=action)
        trace_id, span_id = current_ids()
        with self._lock:
            prev_mac = self.records[-1].mac if self.records else _GENESIS_MAC
            entry = AuditRecord(
                index=len(self.records),
                timestamp=self.clock.now if self.clock is not None else 0.0,
                actor=actor,
                device=device,
                command=command,
                action=action,
                resource=resource,
                allowed=allowed,
                outcome=outcome,
                prev_mac=prev_mac,
                trace_id=trace_id,
                span_id=span_id,
            )
            entry = replace(entry, mac=self._mac(entry))
            self.records.append(entry)
        return entry

    def _mac(self, entry):
        return hmac_module.new(
            self._key, entry.canonical(), hashlib.sha256
        ).hexdigest()

    # -- verification ---------------------------------------------------------

    def verify(self, key=None):
        """Whether the chain is intact (optionally under an external key)."""
        key = key if key is not None else self._key
        prev_mac = _GENESIS_MAC
        for index, entry in enumerate(self.records):
            if entry.index != index or entry.prev_mac != prev_mac:
                return False
            expected = hmac_module.new(
                key, entry.canonical(), hashlib.sha256
            ).hexdigest()
            if not hmac_module.compare_digest(entry.mac, expected):
                return False
            prev_mac = entry.mac
        return True

    # -- anchoring ----------------------------------------------------------------

    def anchor(self):
        """A compact commitment ``(length, head_mac)`` to the current history.

        The customer stores anchors externally (a ticket note, a separate
        log host): :meth:`verify_anchor` then also detects **tail
        truncation**, which the chain alone cannot (removing the newest
        records leaves a valid shorter chain).
        """
        head = self.records[-1].mac if self.records else _GENESIS_MAC
        return (len(self.records), head)

    def verify_anchor(self, anchor):
        """Whether history still extends the anchored prefix intact."""
        length, head = anchor
        if length > len(self.records):
            return False  # shorter than the anchored history: truncated
        if length == 0:
            return self.verify()
        if self.records[length - 1].mac != head:
            return False  # the anchored prefix was rewritten
        return self.verify()

    # -- forensics ----------------------------------------------------------------

    def query(self, device=None, actor=None, allowed=None, action_prefix=None):
        """Filter records for review (the paper's retroactive analysis)."""
        found = []
        for entry in self.records:
            if device is not None and entry.device != device:
                continue
            if actor is not None and entry.actor != actor:
                continue
            if allowed is not None and entry.allowed != allowed:
                continue
            if action_prefix is not None and not entry.action.startswith(
                action_prefix
            ):
                continue
            found.append(entry)
        return found

    def denied(self):
        """All denied actions — the first thing a forensic review reads."""
        return self.query(allowed=False)

    def export(self):
        """Plain-dict export for external review tooling."""
        return [entry.to_dict() for entry in self.records]

    def __len__(self):
        return len(self.records)


# -- replication --------------------------------------------------------------


def _content_key(record):
    """What replicas must agree on: everything except the per-replica chain
    fields (``prev_mac``/``mac`` legitimately differ — each replica chains
    under its own sealed key)."""
    return (
        record.index, record.timestamp, record.actor, record.device,
        record.command, record.action, record.resource, record.allowed,
        record.outcome, record.trace_id, record.span_id,
    )


@dataclass(frozen=True)
class ReplicaVerdict:
    """One cross-check's quorum verdict.

    ``status`` is ``"intact"`` (every replica live, self-valid, and
    content-identical), ``"degraded"`` (a minority is flagged but a quorum
    of agreeing replicas remains — serve and alert), or ``"lost"`` (no
    quorum — every dependent read and append fails closed).
    """

    status: str
    quorum: int
    agreeing: int
    replicas: int
    reference: int  # index of the replica whose content is served
    flagged: tuple  # (replica index, reason) pairs

    @property
    def ok(self):
        return self.status != "lost"

    def summary(self):
        flagged = (
            "; flagged: " + ", ".join(
                f"replica {index} ({reason})" for index, reason in self.flagged
            )
            if self.flagged else ""
        )
        return (
            f"{self.status}: {self.agreeing}/{self.replicas} replicas agree "
            f"(quorum {self.quorum}){flagged}"
        )


class ReplicatedAuditTrail:
    """N independent HMAC chains behind one trail interface.

    Every append fans out to all live replicas; each replica chains under
    its *own* enclave-sealed key (``audit-replica-<i>``), so tampering with
    one replica — even rewriting a record in place — breaks that replica's
    own chain and is caught by :meth:`cross_check`, which quorum-votes the
    replicas' content. Reads serve the majority content while a quorum of
    agreeing replicas remains (flagging the minority); once quorum is lost,
    reads and appends raise
    :class:`~repro.util.errors.AuditQuorumError` — the trail fails closed
    exactly like a single wedged :class:`AuditTrail` does.

    The three ``audit.replica.*`` fault points inject the failure modes the
    ``approvals`` chaos campaign exercises: permanent replica crashes,
    in-place tampering, and single-append partitions.
    """

    def __init__(self, enclave, clock=None, replicas=3, quorum=None,
                 key_prefix="audit-replica"):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.enclave = enclave
        self.clock = clock
        self.quorum = quorum if quorum is not None else replicas // 2 + 1
        if not 1 <= self.quorum <= replicas:
            raise ValueError(
                f"quorum {self.quorum} outside 1..{replicas} replicas"
            )
        # key_prefix namespaces the sealed chain keys: a multi-tenant
        # deployment passes an org-scoped prefix so one org's replicas can
        # never verify (or forge) another org's history.
        self.replicas = [
            AuditTrail(enclave, clock=clock, key_id=f"{key_prefix}-{i}")
            for i in range(replicas)
        ]
        self._down = set()  # replica indices that crashed permanently
        self._lock = threading.Lock()
        _REPLICA_LIVE.set(replicas)

    # -- writing --------------------------------------------------------------

    def record(self, actor, device, command, action, resource, allowed,
               outcome=""):
        """Fan one append out to every live replica; returns the reference
        replica's sealed record.

        Raises:
            AuditQuorumError: fewer than ``quorum`` replicas accepted the
                append. Dependent commits fail closed (the error subclasses
                :class:`~repro.util.errors.AuditWriteError`).
        """
        with self._lock:
            entry = None
            appended = 0
            for index, replica in enumerate(self.replicas):
                if index in self._down:
                    continue
                try:
                    _REPLICA_CRASH_FAULT.fire(replica=index, action=action)
                except AuditReplicaCrash:
                    self._down.add(index)
                    continue
                try:
                    _REPLICA_PARTITION_FAULT.fire(replica=index, action=action)
                except AuditReplicaPartition:
                    # Missed append: the replica stays live and self-valid
                    # but its content silently diverges from here on.
                    continue
                tampered = False
                try:
                    _REPLICA_TAMPER_FAULT.fire(replica=index, action=action)
                except AuditReplicaTamper:
                    tampered = True
                try:
                    written = replica.record(
                        actor=actor, device=device, command=command,
                        action=action, resource=resource, allowed=allowed,
                        outcome=outcome,
                    )
                except AuditWriteError:
                    # The shared audit.append fault (or a genuinely wedged
                    # replica): this replica missed the append.
                    continue
                if tampered:
                    self._tamper(replica)
                    continue  # a tampered replica no longer counts
                entry = entry if entry is not None else written
                appended += 1
            _REPLICA_APPENDS.inc(appended)
            _REPLICA_LIVE.set(len(self.replicas) - len(self._down))
            if appended < self.quorum:
                _REPLICA_QUORUM_LOST.inc()
                raise AuditQuorumError(
                    f"append reached {appended} of {len(self.replicas)} "
                    f"replicas; quorum is {self.quorum} — failing closed"
                )
        return entry

    @staticmethod
    def _tamper(replica):
        """Rewrite the replica's newest record in place, keeping its MAC.

        This is the attacker model: content changed *without* the sealed
        key, so the record's MAC no longer covers its canonical bytes and
        the replica's own chain verification breaks right there.
        """
        if not replica.records:
            return
        newest = replica.records[-1]
        replica.records[-1] = replace(
            newest, outcome=(newest.outcome + " [tampered]").strip()
        )

    # -- verification ---------------------------------------------------------

    def cross_check(self):
        """Quorum-vote the replicas; returns a :class:`ReplicaVerdict`.

        A replica counts toward the quorum only when it is live, its own
        HMAC chain verifies, and its content (MAC fields excluded) is
        identical to the reference content — the content shared by the
        largest such group (ties: longest history, then lowest index).
        Everything else is flagged with a reason.
        """
        states = []
        for index, replica in enumerate(self.replicas):
            content = tuple(_content_key(r) for r in replica.records)
            states.append({
                "index": index,
                "live": index not in self._down,
                "valid": replica.verify(),
                "content": content,
            })
        groups = {}
        for state in states:
            if state["live"] and state["valid"]:
                groups.setdefault(state["content"], []).append(state["index"])
        if groups:
            reference_content, members = max(
                groups.items(),
                key=lambda item: (len(item[1]), len(item[0]), -item[1][0]),
            )
        else:
            reference_content, members = (), []

        flagged = []
        for state in states:
            if state["index"] in members:
                continue
            if not state["live"]:
                reason = f"crashed at {len(state['content'])} records"
            elif not state["valid"]:
                broken = self._first_broken(self.replicas[state["index"]])
                reason = f"chain broken at record {broken}"
            elif (
                state["content"] == reference_content[:len(state["content"])]
            ):
                reason = f"stale at {len(state['content'])} records"
            else:
                diverged = next(
                    (
                        i for i, (a, b) in enumerate(
                            zip(state["content"], reference_content)
                        )
                        if a != b
                    ),
                    min(len(state["content"]), len(reference_content)),
                )
                reason = f"diverged at record {diverged}"
            flagged.append((state["index"], reason))

        agreeing = len(members)
        if agreeing < self.quorum:
            status = "lost"
        elif flagged:
            status = "degraded"
        else:
            status = "intact"
        if flagged:
            _REPLICA_FLAGGED.inc(len(flagged))
        return ReplicaVerdict(
            status=status,
            quorum=self.quorum,
            agreeing=agreeing,
            replicas=len(self.replicas),
            reference=members[0] if members else -1,
            flagged=tuple(flagged),
        )

    @staticmethod
    def _first_broken(replica):
        """Index of the first record failing the replica's own chain."""
        return first_broken_record(
            [record.to_dict() for record in replica.records], replica._key
        )

    def verify(self):
        """Whether a quorum of agreeing, self-valid replicas remains."""
        return self.cross_check().ok

    # -- reading (majority content) -------------------------------------------

    def _reference(self):
        verdict = self.cross_check()
        if not verdict.ok:
            _REPLICA_QUORUM_LOST.inc()
            raise AuditQuorumError(
                f"audit read refused: {verdict.summary()}"
            )
        return self.replicas[verdict.reference]

    @property
    def records(self):
        """The majority content (raises once quorum is lost)."""
        return self._reference().records

    def query(self, device=None, actor=None, allowed=None, action_prefix=None):
        return self._reference().query(
            device=device, actor=actor, allowed=allowed,
            action_prefix=action_prefix,
        )

    def denied(self):
        return self.query(allowed=False)

    def export(self):
        return self._reference().export()

    def anchor(self):
        """The reference replica's ``(length, head_mac)`` commitment."""
        return self._reference().anchor()

    def __len__(self):
        return len(self._reference().records)


# -- offline verification (the CLI's `audit verify`) --------------------------


def derive_chain_key(measurement, key_id):
    """Re-derive a chain key from an attested enclave measurement.

    Mirrors :meth:`~repro.core.enforcer.enclave.SimulatedEnclave.seal_key`:
    the customer holds the measurement from attestation, never the key
    itself, and a tampered build derives a different key.
    """
    return hmac_module.new(
        measurement.encode(), key_id.encode(), hashlib.sha256
    ).digest()


def first_broken_record(records, key):
    """The first exported record whose MAC link fails, or ``None``.

    ``records`` are :meth:`AuditRecord.to_dict` exports — ``prev_mac`` is
    deliberately absent there, so the link is rebuilt from the previous
    record's ``mac`` (record 0 chains from the genesis MAC).
    """
    prev_mac = _GENESIS_MAC
    for position, exported in enumerate(records):
        if exported["index"] != position:
            return position
        entry = AuditRecord(
            index=exported["index"],
            timestamp=exported["timestamp"],
            actor=exported["actor"],
            device=exported["device"],
            command=exported["command"],
            action=exported["action"],
            resource=exported["resource"],
            allowed=exported["allowed"],
            outcome=exported["outcome"],
            prev_mac=prev_mac,
            trace_id=exported.get("trace_id", ""),
            span_id=exported.get("span_id", ""),
        )
        expected = hmac_module.new(
            key, entry.canonical(), hashlib.sha256
        ).hexdigest()
        if not hmac_module.compare_digest(exported["mac"], expected):
            return position
        prev_mac = exported["mac"]
    return None


def export_chains(trail):
    """A JSON-ready export of every chain (single trail or replicated).

    Carries the enclave measurement and each chain's ``key_id``, which is
    everything :func:`verify_export` needs to re-derive keys and re-walk
    the MAC links offline.
    """
    if isinstance(trail, ReplicatedAuditTrail):
        chains = trail.replicas
        quorum = trail.quorum
    else:
        chains = [trail]
        quorum = 1
    return {
        "measurement": trail.enclave.measurement,
        "quorum": quorum,
        "replicas": [
            {
                "key_id": chain.key_id,
                "records": [record.to_dict() for record in chain.records],
            }
            for chain in chains
        ],
    }


def verify_export(payload):
    """Offline verification of an :func:`export_chains` payload.

    Walks every chain under its re-derived key, reports the first broken
    MAC link per replica, and quorum-votes the intact chains' content.
    Returns a dict with per-replica verdicts and the overall ``status``
    (``intact`` / ``degraded`` / ``lost`` — single chains are ``intact``
    or ``lost``).
    """
    measurement = payload["measurement"]
    quorum = payload.get("quorum", 1)
    replicas = []
    groups = {}
    for index, chain in enumerate(payload["replicas"]):
        key = derive_chain_key(measurement, chain["key_id"])
        broken = first_broken_record(chain["records"], key)
        content = tuple(
            (
                r["index"], r["timestamp"], r["actor"], r["device"],
                r["command"], r["action"], r["resource"], r["allowed"],
                r["outcome"], r.get("trace_id", ""), r.get("span_id", ""),
            )
            for r in chain["records"]
        )
        replicas.append({
            "key_id": chain["key_id"],
            "records": len(chain["records"]),
            "first_broken": broken,
            "intact": broken is None,
        })
        if broken is None:
            groups.setdefault(content, []).append(index)
    agreeing = max((len(members) for members in groups.values()), default=0)
    if agreeing < quorum:
        status = "lost"
    elif agreeing == len(payload["replicas"]):
        status = "intact"
    else:
        status = "degraded"
    return {
        "status": status,
        "quorum": quorum,
        "agreeing": agreeing,
        "replicas": replicas,
    }
