"""Tamper-evident audit trails (paper challenge 3).

Every mediated action — allowed or denied — becomes an :class:`AuditRecord`
in an HMAC chain keyed by an enclave-sealed key: record *i*'s MAC covers its
canonical content plus record *i−1*'s MAC, so any later modification,
deletion, or reordering breaks verification from that point on. The customer
verifies the chain with the key re-derived from the attested enclave
measurement — a tampered enforcer build derives a different key and cannot
forge history.

Records are **trace-correlated**: when the observability layer
(:mod:`repro.obs`) is enabled, each record carries the ``trace_id`` and
``span_id`` active at write time, so an auditor can walk from a signed
record to the full span tree of the session that produced it. Both ids are
covered by the MAC — rewriting the correlation is as tamper-evident as
rewriting the command itself. Timestamps come from the shared
:class:`~repro.util.clock.SimulatedClock`, never the wall clock, so audit
history is deterministic run-to-run.
"""

import hmac as hmac_module
import hashlib
import threading
from dataclasses import dataclass, field, replace

from repro import faults
from repro.obs.trace import current_ids
from repro.util.errors import AuditWriteError

_APPEND_FAULT = faults.fault_point(
    "audit.append", error=AuditWriteError,
    help="the audit trail cannot be extended; dependent commits fail "
         "closed (the push rolls back rather than going unrecorded)",
)


@dataclass(frozen=True)
class AuditRecord:
    """One mediated action.

    ``trace_id``/``span_id`` are empty strings when the record was written
    outside any active span (observability disabled, or bookkeeping done
    outside the instrumented pipeline).
    """

    index: int
    timestamp: float
    actor: str
    device: str
    command: str
    action: str
    resource: str
    allowed: bool
    outcome: str
    prev_mac: str
    trace_id: str = ""
    span_id: str = ""
    mac: str = ""

    def canonical(self):
        """The byte string the MAC covers (everything except the MAC)."""
        parts = (
            self.index, self.timestamp, self.actor, self.device, self.command,
            self.action, self.resource, self.allowed, self.outcome,
            self.prev_mac, self.trace_id, self.span_id,
        )
        return "|".join(repr(part) for part in parts).encode()

    def to_dict(self):
        return {
            "index": self.index,
            "timestamp": self.timestamp,
            "actor": self.actor,
            "device": self.device,
            "command": self.command,
            "action": self.action,
            "resource": self.resource,
            "allowed": self.allowed,
            "outcome": self.outcome,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "mac": self.mac,
        }


_GENESIS_MAC = "0" * 64


@dataclass
class AuditTrail:
    """An append-only, HMAC-chained action log."""

    enclave: object
    clock: object = None  # SimulatedClock | None
    records: list = field(default_factory=list)

    def __post_init__(self):
        self._key = self.enclave.seal_key("audit-trail")
        # record() chains each MAC over the previous record's; two appends
        # interleaving would fork the chain (both covering the same
        # prev_mac), so the read-extend-append is one critical section.
        self._lock = threading.Lock()

    # -- writing ------------------------------------------------------------

    def record(self, actor, device, command, action, resource, allowed,
               outcome=""):
        """Append one record; returns it.

        Args:
            actor: who acted (a session id, ``"technician"``, ...).
            device: the device touched, or ``"-"`` for non-device actions.
            command: the raw command or a synthetic action summary.
            action: the classified action (``config.interface``, ...).
            resource: the classified resource the action targeted.
            allowed: the mediation verdict.
            outcome: free-form result text (``"ok"``, an error, a summary).

        Returns:
            The appended, MAC-sealed :class:`AuditRecord`. The active
            observability trace/span ids (if any) are captured implicitly.

        Raises:
            AuditWriteError: the trail could not be extended (injected via
                the ``audit.append`` fault point). Nothing is appended —
                the chain never holds a half-written record.
        """
        _APPEND_FAULT.fire(actor=actor, action=action)
        trace_id, span_id = current_ids()
        with self._lock:
            prev_mac = self.records[-1].mac if self.records else _GENESIS_MAC
            entry = AuditRecord(
                index=len(self.records),
                timestamp=self.clock.now if self.clock is not None else 0.0,
                actor=actor,
                device=device,
                command=command,
                action=action,
                resource=resource,
                allowed=allowed,
                outcome=outcome,
                prev_mac=prev_mac,
                trace_id=trace_id,
                span_id=span_id,
            )
            entry = replace(entry, mac=self._mac(entry))
            self.records.append(entry)
        return entry

    def _mac(self, entry):
        return hmac_module.new(
            self._key, entry.canonical(), hashlib.sha256
        ).hexdigest()

    # -- verification ---------------------------------------------------------

    def verify(self, key=None):
        """Whether the chain is intact (optionally under an external key)."""
        key = key if key is not None else self._key
        prev_mac = _GENESIS_MAC
        for index, entry in enumerate(self.records):
            if entry.index != index or entry.prev_mac != prev_mac:
                return False
            expected = hmac_module.new(
                key, entry.canonical(), hashlib.sha256
            ).hexdigest()
            if not hmac_module.compare_digest(entry.mac, expected):
                return False
            prev_mac = entry.mac
        return True

    # -- anchoring ----------------------------------------------------------------

    def anchor(self):
        """A compact commitment ``(length, head_mac)`` to the current history.

        The customer stores anchors externally (a ticket note, a separate
        log host): :meth:`verify_anchor` then also detects **tail
        truncation**, which the chain alone cannot (removing the newest
        records leaves a valid shorter chain).
        """
        head = self.records[-1].mac if self.records else _GENESIS_MAC
        return (len(self.records), head)

    def verify_anchor(self, anchor):
        """Whether history still extends the anchored prefix intact."""
        length, head = anchor
        if length > len(self.records):
            return False  # shorter than the anchored history: truncated
        if length == 0:
            return self.verify()
        if self.records[length - 1].mac != head:
            return False  # the anchored prefix was rewritten
        return self.verify()

    # -- forensics ----------------------------------------------------------------

    def query(self, device=None, actor=None, allowed=None, action_prefix=None):
        """Filter records for review (the paper's retroactive analysis)."""
        found = []
        for entry in self.records:
            if device is not None and entry.device != device:
                continue
            if actor is not None and entry.actor != actor:
                continue
            if allowed is not None and entry.allowed != allowed:
                continue
            if action_prefix is not None and not entry.action.startswith(
                action_prefix
            ):
                continue
            found.append(entry)
        return found

    def denied(self):
        """All denied actions — the first thing a forensic review reads."""
        return self.query(allowed=False)

    def export(self):
        """Plain-dict export for external review tooling."""
        return [entry.to_dict() for entry in self.records]

    def __len__(self):
        return len(self.records)
