"""Change verification: the gate between twin output and production.

Deferred verification (the paper's choice over per-action checking): the
verifier sees only the final semantic change set, checks every change
against the Privilege_msp, simulates the changes on a copy of production,
and re-verifies the network policies. A change set is approved only when it
introduces no privilege violation and no *new* policy violation (policies
already broken in production — e.g. the ticket's own fault — don't block
the fix that repairs them).

Verification rides the incremental compile pipeline by default: the
production plane comes from the process-wide compile cache (so repeated
tickets against the same production snapshot compile it once and share its
traces), the candidate plane is built incrementally against production
reusing every artifact the change set cannot have touched, and cached
production traces that provably avoid the changed devices are pre-seeded
into the candidate so neither the policy sweep nor the impact analysis
re-traces them. Pass ``incremental=False`` to force from-scratch compiles
(the benchmarks use this as the cold baseline).
"""

from dataclasses import dataclass, field

from repro.config.apply import apply_changes
from repro.control.builder import build_dataplane
from repro.dataplane.differential import diff_reachability, seed_unaffected_traces
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.policy.verification import PolicyVerifier

_VERIFICATIONS = obs_metrics.counter(
    "enforcer.verifications", unit="verifications",
    help="full change-set verification passes",
)
_APPROVED = obs_metrics.counter(
    "enforcer.approved", unit="verifications",
    help="verification passes that approved the change set",
)
_REJECTED = obs_metrics.counter(
    "enforcer.rejected", unit="verifications",
    help="verification passes that rejected the change set",
)
_TRACES_SEEDED = obs_metrics.counter(
    "enforcer.traces.seeded", unit="traces",
    help="cached production traces proven valid and reused on the candidate",
)


@dataclass
class EnforcementDecision:
    """The verifier's verdict on one change set."""

    changes: list
    privilege_violations: list = field(default_factory=list)
    new_policy_violations: list = field(default_factory=list)
    preexisting_violations: list = field(default_factory=list)
    baseline_report: object = None  # production's policy state pre-change
    candidate_report: object = None
    impact: object = None  # ReachabilityDiff: the change set's blast radius
    push_report: object = None  # PushReport once the import ran (or rolled back)
    # Quorum-approval outcome (None unless the deployment runs approvals):
    # the RiskAssessment that scored the change set, and the
    # ApprovalRequest when the score crossed the high-risk threshold. An
    # approved decision whose approval was denied is never pushed.
    risk: object = None
    approval: object = None

    def invariant_policy_ids(self):
        """Policies holding both before and after the full change set.

        These are the **rollout invariants**: policies no intermediate
        wave of a staged push is supposed to disturb, so the post-wave
        health probes check exactly this set against each mixed-version
        dataplane. Policies the change set itself (correctly) flips —
        the ticket's own fix — are excluded by construction.
        """
        if self.baseline_report is None or self.candidate_report is None:
            return ()
        before = {
            r.policy.policy_id for r in self.baseline_report.results if r.holds
        }
        after = {
            r.policy.policy_id for r in self.candidate_report.results if r.holds
        }
        return tuple(sorted(before & after))

    @property
    def approved(self):
        return not self.privilege_violations and not self.new_policy_violations

    def summary(self):
        if self.approved:
            return (
                f"approved: {len(self.changes)} changes, "
                f"{len(self.preexisting_violations)} pre-existing violations "
                f"remain"
            )
        return (
            f"REJECTED: {len(self.privilege_violations)} privilege violations, "
            f"{len(self.new_policy_violations)} new policy violations"
        )


class ChangeVerifier:
    """Verifies change sets against a Privilege_msp and network policies."""

    def __init__(self, policies, privilege_spec=None, incremental=True,
                 max_workers=None, verify_workers=None):
        self.policy_verifier = PolicyVerifier(policies, max_workers=max_workers)
        self.privilege_spec = privilege_spec
        self.incremental = incremental
        # Mega-network escape hatch: route the two policy sweeps through
        # the process-sharded verifier instead of the in-process one. Off
        # (None) by default — forking only pays for generated-scale policy
        # sets; see docs/SCALING.md.
        self.verify_workers = verify_workers

    def _verify_policies(self, dataplane):
        if self.verify_workers is None:
            return self.policy_verifier.verify_dataplane(dataplane)
        from repro.control.shard import sharded_verify

        return sharded_verify(
            self.policy_verifier.policies, dataplane,
            workers=self.verify_workers,
        )

    @property
    def constraint_count(self):
        """How many constraints one verification pass checks (timing driver)."""
        return len(self.policy_verifier)

    def check_privileges(self, changes):
        """Changes the Privilege_msp forbids (empty when no spec is set)."""
        if self.privilege_spec is None:
            return []
        violations = []
        for change in changes:
            resource = (
                f"{change.device}:{change.path}" if change.path else change.device
            )
            if not self.privilege_spec.allows(change.action, resource):
                violations.append(change)
        return violations

    def simulate(self, production, changes):
        """A copy of production with ``changes`` applied."""
        candidate = production.copy()
        apply_changes(candidate.configs, changes)
        return candidate

    def verify(self, production, changes):
        """Full verification; returns an :class:`EnforcementDecision`.

        Besides the policy verdict, the decision carries an **impact
        analysis** (differential reachability between production and the
        simulated candidate) so reviewers see collateral effects on flows
        no policy covers.

        Args:
            production: the live :class:`~repro.net.network.Network` the
                changes would be imported into (never mutated here).
            changes: the semantic change set the twin emitted
                (:class:`~repro.config.diffing.ConfigChange` list).

        Returns:
            An :class:`EnforcementDecision`; ``decision.approved`` is the
            import verdict.
        """
        changes = list(changes)
        with obs_trace.span(
            "enforcer.verify", changes=len(changes),
            incremental=self.incremental,
        ) as vspan:
            decision = EnforcementDecision(changes=changes)
            with obs_trace.span("enforcer.privileges"):
                decision.privilege_violations = self.check_privileges(changes)

            with obs_trace.span("enforcer.compile.production"):
                production_dataplane = build_dataplane(
                    production, use_cache=self.incremental
                )
            # Neither plane's configs mutate while this pass runs:
            # production is never mutated here and the sessions layer
            # serializes pushes against verification; the candidate is
            # built below by this method and dropped when it returns. So
            # the trace-cache drift guard (re-hashing every device on a
            # traced path) would only re-prove what the compile just
            # fingerprinted — skip it on the verification hot path.
            production_dataplane.assert_binding_intact()
            with obs_trace.span("enforcer.policy.baseline"):
                baseline_report = self._verify_policies(production_dataplane)
            decision.baseline_report = baseline_report
            already_broken = {
                result.policy.policy_id
                for result in baseline_report.violations
            }

            with obs_trace.span("enforcer.compile.candidate") as cspan:
                if self.incremental:
                    # The change set is authoritative here (we build the
                    # candidate from it ourselves), so the copy can share
                    # unchanged config objects and fingerprinting can skip
                    # re-hashing them.
                    changed = {change.device for change in changes}
                    candidate = production.copy_except(changed)
                    apply_changes(candidate.configs, changes)
                    candidate_dataplane = build_dataplane(
                        candidate,
                        baseline=production_dataplane,
                        same_except=changed,
                    )
                    seeded = seed_unaffected_traces(
                        production_dataplane, candidate_dataplane
                    )
                    _TRACES_SEEDED.inc(seeded)
                    cspan.set(seeded_traces=seeded)
                else:
                    candidate = self.simulate(production, changes)
                    candidate_dataplane = build_dataplane(
                        candidate, use_cache=False
                    )
                candidate_dataplane.assert_binding_intact()
            with obs_trace.span("enforcer.policy.candidate"):
                decision.candidate_report = self._verify_policies(
                    candidate_dataplane
                )
            with obs_trace.span("enforcer.impact"):
                decision.impact = diff_reachability(
                    production_dataplane, candidate_dataplane
                )
            for result in decision.candidate_report.violations:
                if result.policy.policy_id in already_broken:
                    decision.preexisting_violations.append(result)
                else:
                    decision.new_policy_violations.append(result)

            _VERIFICATIONS.inc()
            (_APPROVED if decision.approved else _REJECTED).inc()
            vspan.set(approved=decision.approved)
        return decision
