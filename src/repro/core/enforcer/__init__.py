"""The policy enforcer (paper §4.3): verifier + scheduler + audit, in an enclave."""

from repro.core.enforcer.audit import AuditRecord, AuditTrail
from repro.core.enforcer.enclave import (
    AttestationReport,
    SimulatedEnclave,
    verify_attestation,
)
from repro.core.enforcer.scheduler import CATEGORY_ORDER, ChangeScheduler, PushReport
from repro.core.enforcer.verifier import ChangeVerifier, EnforcementDecision

__all__ = [
    "AttestationReport",
    "AuditRecord",
    "AuditTrail",
    "CATEGORY_ORDER",
    "ChangeScheduler",
    "ChangeVerifier",
    "EnforcementDecision",
    "PushReport",
    "SimulatedEnclave",
    "verify_attestation",
]
