"""Write-ahead journal for transactional production pushes.

:meth:`~repro.core.enforcer.scheduler.ChangeScheduler.push` records its
intent *before* touching production and a commit marker *after* every
batch, so a pusher crash at any instant leaves enough durable state to
finish or undo the push (docs/ROBUSTNESS.md "Journal format"):

1. ``intent``   — push id, the ordered batches, and a pre-push snapshot of
   every device the push will touch (both live config copies for restore
   and canonical serialized text for byte-identical verification);
2. ``batch-start i`` — written before batch *i* mutates anything, with a
   pre-batch snapshot of exactly the devices batch *i* touches;
3. ``batch-committed i`` — batch *i* fully applied;
4. ``done`` | ``rolled-back`` — the terminal marker. A journal without one
   is an in-flight push: :meth:`ChangeScheduler.resume` first restores the
   pre-batch snapshot of the one possibly half-applied batch, then
   re-applies every uncommitted batch — which makes recovery idempotent
   even though individual changes (list appends) are not.

The journal is an in-process object (the simulated stand-in for an fsynced
journal file); ``entries`` is its append-only record and ``to_dict()`` its
export for audit tooling.
"""

from dataclasses import dataclass

from repro.config.serializer import serialize_config
from repro.util.errors import JournalError

# Terminal states a push journal can end in. Anything else means the push
# is still in flight and must be resumed or rolled back.
IN_FLIGHT = "in-flight"
COMMITTED = "committed"
ROLLED_BACK = "rolled-back"


@dataclass
class JournalEntry:
    """One append-only journal record."""

    # intent | approval | batch-start | batch-committed | batch-restored
    # | done | rolled-back | wave-start | probe | wave-committed | quarantine
    kind: str
    batch_index: int = None
    detail: str = ""
    wave_index: int = None


class PushJournal:
    """The durable record of one push's intent and progress.

    For staged pushes (``wave_plan`` given) the journal additionally
    records wave-granular progress: ``wave-start`` / ``probe`` /
    ``wave-committed`` markers bracketing each wave's batch markers, the
    quarantine list a failed wave produced, and the invariant policy ids
    the health probes check — enough for :meth:`ChangeScheduler.resume`
    to rebuild the probe and replay only the uncommitted waves after a
    mid-wave crash.
    """

    def __init__(self, push_id, batches, production, wave_plan=None,
                 invariant_policies=None, rollout=None):
        self.push_id = push_id
        self.batches = [list(batch) for batch in batches]
        self.state = IN_FLIGHT
        self.entries = []
        self.committed = set()  # batch indices fully applied
        self._inflight_index = None
        self._inflight_snapshot = None  # device -> pre-batch config copy
        # Staged-rollout state (all None/empty for monolithic pushes).
        self.wave_plan = (
            [dict(wave) for wave in wave_plan] if wave_plan is not None
            else None
        )
        self.committed_waves = set()  # wave indices fully applied + probed
        self.quarantined = []  # (device, reason) from failed waves
        self.invariant_policies = (
            tuple(invariant_policies) if invariant_policies is not None
            else None
        )
        self.rollout = rollout  # the RolloutConfig, for resume()
        # Quorum-approval marker (repro.core.approvals): set once, right
        # after intent, when the push carries a granted high-risk approval.
        # resume() never re-runs the approval round — the marker is the
        # durable proof the round already concluded before any mutation.
        self.approval_id = None
        self.devices = sorted(
            {change.device for batch in self.batches for change in batch}
        )
        # Pre-push snapshot: live copies for rollback, canonical text for
        # the byte-identical-restore property check.
        self.snapshot = {
            device: production.config(device).copy() for device in self.devices
        }
        self.snapshot_text = {
            device: serialize_config(config)
            for device, config in self.snapshot.items()
        }
        self.entries.append(
            JournalEntry(
                "intent",
                detail=f"{len(self.batches)} batches over "
                       f"{len(self.devices)} devices",
            )
        )

    # -- markers (written by the pusher) -------------------------------------

    def mark_approval(self, approval_id):
        """Record the granted quorum approval this push runs under.

        Written after ``intent`` and before the first ``batch-start``, so a
        crash anywhere past this point resumes *without* re-requesting
        approvals: the grant already covered this exact change set.
        """
        self._require_in_flight()
        self.approval_id = approval_id
        self.entries.append(JournalEntry("approval", detail=approval_id))

    def mark_batch_start(self, index, production):
        """Record that batch ``index`` is about to mutate production."""
        self._require_in_flight()
        self._inflight_index = index
        self._inflight_snapshot = {
            change.device: production.config(change.device).copy()
            for change in self.batches[index]
        }
        self.entries.append(JournalEntry("batch-start", batch_index=index))

    def mark_batch_committed(self, index):
        """Record that batch ``index`` fully applied."""
        self._require_in_flight()
        self.committed.add(index)
        self._inflight_index = None
        self._inflight_snapshot = None
        self.entries.append(JournalEntry("batch-committed", batch_index=index))

    def mark_wave_start(self, index):
        """Record that wave ``index`` is about to start applying."""
        self._require_in_flight()
        self.entries.append(JournalEntry("wave-start", wave_index=index))

    def mark_probe(self, index, healthy, detail=""):
        """Record wave ``index``'s health-probe verdict."""
        self._require_in_flight()
        self.entries.append(
            JournalEntry(
                "probe", wave_index=index,
                detail=f"{'healthy' if healthy else 'unhealthy'}: {detail}",
            )
        )

    def mark_wave_committed(self, index):
        """Record that wave ``index`` fully applied and probed healthy."""
        self._require_in_flight()
        self.committed_waves.add(index)
        self.entries.append(JournalEntry("wave-committed", wave_index=index))

    def mark_quarantine(self, device, reason=""):
        """Record that a failed wave quarantined ``device``."""
        self._require_in_flight()
        self.quarantined.append((device, reason))
        self.entries.append(
            JournalEntry("quarantine", detail=f"{device}: {reason}")
        )

    def mark_done(self):
        """Terminal marker: every batch committed."""
        self._require_in_flight()
        self.state = COMMITTED
        self.entries.append(JournalEntry("done"))

    def mark_rolled_back(self, reason=""):
        """Terminal marker: production restored to the pre-push snapshot."""
        self._require_in_flight()
        self.state = ROLLED_BACK
        self.entries.append(JournalEntry("rolled-back", detail=reason))

    def _require_in_flight(self):
        if self.state != IN_FLIGHT:
            raise JournalError(
                f"push {self.push_id} journal already terminal: {self.state}"
            )

    # -- recovery (read by resume / rollback) --------------------------------

    @property
    def terminal(self):
        return self.state != IN_FLIGHT

    def uncommitted_batches(self):
        """(index, batch) pairs still to apply, in order."""
        return [
            (index, batch)
            for index, batch in enumerate(self.batches)
            if index not in self.committed
        ]

    def uncommitted_waves(self):
        """Wave-plan entries still to apply/probe, in order.

        A wave whose ``wave-committed`` marker made it into the journal is
        done — its batches applied *and* its probe passed — so resume skips
        it entirely. Everything after the last such marker replays (the
        batch-level ``committed`` set keeps the replay idempotent even when
        the crash landed mid-wave).
        """
        if self.wave_plan is None:
            return []
        return [
            wave for wave in self.wave_plan
            if wave["index"] not in self.committed_waves
        ]

    def quarantined_devices(self):
        """Quarantined device names, sorted and de-duplicated."""
        return sorted({device for device, _ in self.quarantined})

    def restore_inflight_batch(self, production):
        """Undo the possibly half-applied batch recorded by the last
        ``batch-start`` without a matching ``batch-committed``.

        Returns the restored batch index, or ``None`` when the crash
        happened between batches (nothing half-applied).
        """
        if self._inflight_index is None:
            return None
        for device, config in self._inflight_snapshot.items():
            production.configs[device] = config.copy()
        index = self._inflight_index
        self._inflight_index = None
        self._inflight_snapshot = None
        self.entries.append(
            JournalEntry("batch-restored", batch_index=index)
        )
        return index

    def restore_snapshot(self, production):
        """Roll production back to the pre-push snapshot (all devices)."""
        for device, config in self.snapshot.items():
            production.configs[device] = config.copy()

    def snapshot_matches(self, production):
        """Whether production's serialized configs are byte-identical to
        the pre-push snapshot (the rollback invariant)."""
        return all(
            serialize_config(production.config(device)) == text
            for device, text in self.snapshot_text.items()
        )

    # -- export ---------------------------------------------------------------

    def to_dict(self):
        """JSON-ready journal export (change objects summarised)."""
        exported = {
            "push_id": self.push_id,
            "state": self.state,
            "devices": list(self.devices),
            "batches": [
                [change.summary() for change in batch]
                for batch in self.batches
            ],
            "committed": sorted(self.committed),
            "approval_id": self.approval_id,
            "entries": [
                {
                    "kind": entry.kind,
                    "batch_index": entry.batch_index,
                    "detail": entry.detail,
                    "wave_index": entry.wave_index,
                }
                for entry in self.entries
            ],
        }
        if self.wave_plan is not None:
            exported["wave_plan"] = [dict(wave) for wave in self.wave_plan]
            exported["committed_waves"] = sorted(self.committed_waves)
            exported["quarantined"] = [
                {"device": device, "reason": reason}
                for device, reason in self.quarantined
            ]
        return exported
