"""Write-ahead journal for transactional production pushes.

:meth:`~repro.core.enforcer.scheduler.ChangeScheduler.push` records its
intent *before* touching production and a commit marker *after* every
batch, so a pusher crash at any instant leaves enough durable state to
finish or undo the push (docs/ROBUSTNESS.md "Journal format"):

1. ``intent``   — push id, the ordered batches, and a pre-push snapshot of
   every device the push will touch (both live config copies for restore
   and canonical serialized text for byte-identical verification);
2. ``batch-start i`` — written before batch *i* mutates anything, with a
   pre-batch snapshot of exactly the devices batch *i* touches;
3. ``batch-committed i`` — batch *i* fully applied;
4. ``done`` | ``rolled-back`` — the terminal marker. A journal without one
   is an in-flight push: :meth:`ChangeScheduler.resume` first restores the
   pre-batch snapshot of the one possibly half-applied batch, then
   re-applies every uncommitted batch — which makes recovery idempotent
   even though individual changes (list appends) are not.

The journal is an in-process object (the simulated stand-in for an fsynced
journal file); ``entries`` is its append-only record and ``to_dict()`` its
export for audit tooling.
"""

from dataclasses import dataclass

from repro.config.serializer import serialize_config
from repro.util.errors import JournalError

# Terminal states a push journal can end in. Anything else means the push
# is still in flight and must be resumed or rolled back.
IN_FLIGHT = "in-flight"
COMMITTED = "committed"
ROLLED_BACK = "rolled-back"


@dataclass
class JournalEntry:
    """One append-only journal record."""

    # intent | batch-start | batch-committed | batch-restored | done
    # | rolled-back
    kind: str
    batch_index: int = None
    detail: str = ""


class PushJournal:
    """The durable record of one push's intent and progress."""

    def __init__(self, push_id, batches, production):
        self.push_id = push_id
        self.batches = [list(batch) for batch in batches]
        self.state = IN_FLIGHT
        self.entries = []
        self.committed = set()  # batch indices fully applied
        self._inflight_index = None
        self._inflight_snapshot = None  # device -> pre-batch config copy
        self.devices = sorted(
            {change.device for batch in self.batches for change in batch}
        )
        # Pre-push snapshot: live copies for rollback, canonical text for
        # the byte-identical-restore property check.
        self.snapshot = {
            device: production.config(device).copy() for device in self.devices
        }
        self.snapshot_text = {
            device: serialize_config(config)
            for device, config in self.snapshot.items()
        }
        self.entries.append(
            JournalEntry(
                "intent",
                detail=f"{len(self.batches)} batches over "
                       f"{len(self.devices)} devices",
            )
        )

    # -- markers (written by the pusher) -------------------------------------

    def mark_batch_start(self, index, production):
        """Record that batch ``index`` is about to mutate production."""
        self._require_in_flight()
        self._inflight_index = index
        self._inflight_snapshot = {
            change.device: production.config(change.device).copy()
            for change in self.batches[index]
        }
        self.entries.append(JournalEntry("batch-start", batch_index=index))

    def mark_batch_committed(self, index):
        """Record that batch ``index`` fully applied."""
        self._require_in_flight()
        self.committed.add(index)
        self._inflight_index = None
        self._inflight_snapshot = None
        self.entries.append(JournalEntry("batch-committed", batch_index=index))

    def mark_done(self):
        """Terminal marker: every batch committed."""
        self._require_in_flight()
        self.state = COMMITTED
        self.entries.append(JournalEntry("done"))

    def mark_rolled_back(self, reason=""):
        """Terminal marker: production restored to the pre-push snapshot."""
        self._require_in_flight()
        self.state = ROLLED_BACK
        self.entries.append(JournalEntry("rolled-back", detail=reason))

    def _require_in_flight(self):
        if self.state != IN_FLIGHT:
            raise JournalError(
                f"push {self.push_id} journal already terminal: {self.state}"
            )

    # -- recovery (read by resume / rollback) --------------------------------

    @property
    def terminal(self):
        return self.state != IN_FLIGHT

    def uncommitted_batches(self):
        """(index, batch) pairs still to apply, in order."""
        return [
            (index, batch)
            for index, batch in enumerate(self.batches)
            if index not in self.committed
        ]

    def restore_inflight_batch(self, production):
        """Undo the possibly half-applied batch recorded by the last
        ``batch-start`` without a matching ``batch-committed``.

        Returns the restored batch index, or ``None`` when the crash
        happened between batches (nothing half-applied).
        """
        if self._inflight_index is None:
            return None
        for device, config in self._inflight_snapshot.items():
            production.configs[device] = config.copy()
        index = self._inflight_index
        self._inflight_index = None
        self._inflight_snapshot = None
        self.entries.append(
            JournalEntry("batch-restored", batch_index=index)
        )
        return index

    def restore_snapshot(self, production):
        """Roll production back to the pre-push snapshot (all devices)."""
        for device, config in self.snapshot.items():
            production.configs[device] = config.copy()

    def snapshot_matches(self, production):
        """Whether production's serialized configs are byte-identical to
        the pre-push snapshot (the rollback invariant)."""
        return all(
            serialize_config(production.config(device)) == text
            for device, text in self.snapshot_text.items()
        )

    # -- export ---------------------------------------------------------------

    def to_dict(self):
        """JSON-ready journal export (change objects summarised)."""
        return {
            "push_id": self.push_id,
            "state": self.state,
            "devices": list(self.devices),
            "batches": [
                [change.summary() for change in batch]
                for batch in self.batches
            ],
            "committed": sorted(self.committed),
            "entries": [
                {
                    "kind": entry.kind,
                    "batch_index": entry.batch_index,
                    "detail": entry.detail,
                }
                for entry in self.entries
            ],
        }
