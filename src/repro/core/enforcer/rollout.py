"""Staged canary rollouts: wave plans, health probes, circuit breakers.

The transactional push (docs/ROBUSTNESS.md) guarantees production ends in
one of two states, but a monolithic push still *transits* arbitrary
unverified intermediate states — and a single bad device takes every other
device's change down with it only after all of them applied. This module
supplies the three pieces that turn :meth:`ChangeScheduler.push` into a
staged deployment engine (docs/ARCHITECTURE.md "Staged rollout"):

* :class:`RolloutPlan` partitions the scheduler's ordered category batches
  into **waves** of devices — per-device by default, configurable wave
  size, explicit canary devices first — such that the concatenation of all
  wave batches is a permutation of the input and per-device change order
  is preserved;
* :class:`HealthProbe` compiles the **mixed-version dataplane** of the
  partially-updated production network after every wave (incrementally,
  against a frozen pre-push baseline plane, via the compile cache's
  ``same_except`` fast path) and checks the invariant policies plus a
  route-convergence sanity sweep against it;
* :class:`CircuitBreaker` counts transient apply failures per device
  across the whole push and refuses further applies to a device whose
  flap budget is spent, so one flapping device is quarantined instead of
  burning every wave's retry budget.

All three rollout fault points live here so the chaos campaigns (the
``canary`` campaign in :mod:`repro.faults.chaos`) can exercise probe
failures, device flaps, and mid-wave crashes deterministically.
"""

from dataclasses import dataclass, field

from repro import faults
from repro.control.builder import build_dataplane
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.policy.verification import PolicyVerifier
from repro.util.errors import (
    HealthProbeError,
    PushCrashed,
    TransientDeviceError,
)

_WAVES = obs_metrics.counter(
    "rollout.waves", unit="waves",
    help="rollout waves fully applied and probed healthy",
)
_PROBES = obs_metrics.counter(
    "rollout.probes", unit="probes",
    help="post-wave health probes run on mixed-version dataplanes",
)
_PROBE_VIOLATIONS = obs_metrics.counter(
    "rollout.probe.violations", unit="probes",
    help="health probes that found an invariant violation or a dead route",
)
_QUARANTINED = obs_metrics.counter(
    "rollout.quarantined", unit="devices",
    help="devices quarantined by failed rollout waves",
)
_BREAKER_TRIPS = obs_metrics.counter(
    "rollout.breaker.trips", unit="devices",
    help="per-device circuit breakers opened by spent flap budgets",
)
_PROBE_PARALLEL = obs_metrics.counter(
    "rollout.probe.parallel", unit="probes",
    help="health probes dispatched concurrently within a disjoint-cone "
         "wave group (sequential probes are not counted)",
)

# Fault points the canary chaos campaign arms (docs/ROBUSTNESS.md catalog).
PROBE_FAIL_FAULT = faults.fault_point(
    "rollout.wave.probe_fail", error=HealthProbeError,
    help="a post-wave health probe reports an invariant violation on the "
         "mixed-version dataplane; the wave's devices are quarantined and "
         "every applied wave rolls back",
)
FLAP_FAULT = faults.fault_point(
    "rollout.device.flap", error=TransientDeviceError,
    help="a device flaps during a staged wave apply; retried like any "
         "transient failure but counted against the device's circuit "
         "breaker, which quarantines it once the flap budget is spent",
)
MIDWAVE_CRASH_FAULT = faults.fault_point(
    "rollout.crash.midwave", error=PushCrashed,
    help="the pusher dies between waves or mid-wave; the journal's "
         "wave/probe markers let resume() replay only the uncommitted "
         "waves, re-probing each",
)


@dataclass(frozen=True)
class RolloutConfig:
    """How a push should be staged.

    ``wave_size`` devices advance per wave (1 = strict per-device canary);
    ``canary`` devices, when named, always form the leading wave(s);
    ``flap_budget`` transient failures per device open its circuit breaker;
    ``probe_incremental=False`` forces from-scratch probe compiles (the
    rollout benchmark's cold baseline); ``probe_convergence`` toggles the
    dead-next-hop sweep; ``probe_parallel`` lets consecutive waves whose
    dependency cones (:func:`repro.control.deps.wave_cone`) are pairwise
    disjoint apply back-to-back and probe concurrently — overlapping cones
    always fall back to the strict apply-probe-commit sequence.
    """

    wave_size: int = 1
    canary: tuple = ()
    flap_budget: int = 3
    probe_incremental: bool = True
    probe_convergence: bool = True
    probe_parallel: bool = True


@dataclass
class Wave:
    """One wave: a device group plus its slice of the ordered batches."""

    index: int
    devices: tuple
    batches: list = field(default_factory=list)  # list[list[ConfigChange]]
    batch_indices: list = field(default_factory=list)  # into the flat list

    @property
    def change_count(self):
        return sum(len(batch) for batch in self.batches)


class RolloutPlan:
    """A push's changes partitioned into ordered waves.

    Built from the scheduler's category batches: devices are grouped by
    first appearance in the flattened ordered change list (explicit canary
    devices promoted to the front), chunked into waves of
    ``config.wave_size``, and each wave's batches are the scheduled batches
    filtered to that wave's devices. Per-device change order is therefore
    exactly the scheduled order, and ``flat_batches`` — the concatenation
    of every wave's batches, which is what gets journaled — is a
    permutation of the input change set.
    """

    def __init__(self, waves, config):
        self.waves = list(waves)
        self.config = config
        self.flat_batches = []
        for wave in self.waves:
            wave.batch_indices = []
            for batch in wave.batches:
                wave.batch_indices.append(len(self.flat_batches))
                self.flat_batches.append(batch)

    @classmethod
    def from_batches(cls, batches, config=None):
        config = config if config is not None else RolloutConfig()
        order = []
        for batch in batches:
            for change in batch:
                if change.device not in order:
                    order.append(change.device)
        canary = [device for device in config.canary if device in order]
        rest = [device for device in order if device not in canary]
        ordered = canary + rest
        size = max(1, config.wave_size)
        waves = []
        for start in range(0, len(ordered), size):
            devices = tuple(ordered[start:start + size])
            wave_batches = [
                [change for change in batch if change.device in devices]
                for batch in batches
            ]
            wave_batches = [batch for batch in wave_batches if batch]
            waves.append(
                Wave(index=len(waves), devices=devices, batches=wave_batches)
            )
        return cls(waves, config)

    @property
    def device_order(self):
        return [device for wave in self.waves for device in wave.devices]

    def wave_plan(self):
        """The journal-ready description of the waves (plain data)."""
        return [
            {
                "index": wave.index,
                "devices": list(wave.devices),
                "batch_indices": list(wave.batch_indices),
            }
            for wave in self.waves
        ]

    def __len__(self):
        return len(self.waves)


@dataclass
class ProbeResult:
    """What one post-wave health probe found."""

    wave_index: int
    policies_checked: int = 0
    violations: tuple = ()  # invariant policy ids that broke
    dead_routes: tuple = ()  # newly dead next hops ("device: prefix via nh")

    @property
    def healthy(self):
        return not self.violations and not self.dead_routes

    def summary(self):
        if self.healthy:
            return (
                f"healthy: {self.policies_checked} invariants hold, "
                f"routes converged"
            )
        parts = []
        if self.violations:
            parts.append(f"invariants broken: {', '.join(self.violations)}")
        if self.dead_routes:
            parts.append(f"dead routes: {'; '.join(self.dead_routes)}")
        return "UNHEALTHY: " + "; ".join(parts)


class HealthProbe:
    """Verifies each intermediate (mixed-version) state of a staged push.

    The probe owns a **frozen pre-push baseline**: a private copy of
    production taken before the first wave, compiled once (a compile-cache
    hit — the verifier just compiled the same content). Probing after wave
    *k* compiles the live, partially-updated production incrementally
    against that baseline, asserting ``same_except`` the cumulative applied
    device set, so the mixed-version plane reuses every artifact the
    applied waves cannot have touched. The copy matters: an incremental
    compile reads the *old* configs through its baseline plane's network,
    and production mutates in place between waves — a baseline bound to
    production itself would silently see no diff.
    """

    def __init__(self, baseline_plane, policy_verifier=None,
                 invariant_policy_ids=(), incremental=True,
                 check_convergence=True):
        self.baseline_plane = baseline_plane
        self.policy_verifier = policy_verifier
        self.invariants = frozenset(invariant_policy_ids or ())
        self.incremental = incremental
        self.check_convergence = check_convergence
        # Verify only the invariant policies instead of the full set and
        # filtering afterwards — the probe never reports anything else.
        self._invariant_verifier = None
        if policy_verifier is not None and self.invariants:
            policies = getattr(policy_verifier, "policies", None)
            if policies is not None:
                relevant = [
                    policy for policy in policies
                    if policy.policy_id in self.invariants
                ]
                self._invariant_verifier = PolicyVerifier(
                    relevant,
                    max_workers=getattr(policy_verifier, "max_workers", None),
                )
            else:
                self._invariant_verifier = policy_verifier
        # Per-device dead-next-hop sets: the convergence sweep reuses a
        # device's baseline set whenever neither its FIB nor any config on
        # its attached segments can have changed.
        self._baseline_dead_by_device = None
        self.baseline_dead = frozenset()
        if check_convergence:
            self._baseline_dead_by_device = {
                device: self._dead_for_device(baseline_plane, device)
                for device in baseline_plane.network.routers()
            }
            self.baseline_dead = frozenset().union(
                *self._baseline_dead_by_device.values()
            ) if self._baseline_dead_by_device else frozenset()
        # The previous probe's plane: each wave's plane differs from its
        # predecessor by one wave, so traces seed best chain-wise. Read
        # once / written last in check(); races between concurrent group
        # probes are benign (any seed source is valid).
        self._last_plane = None

    @classmethod
    def for_push(cls, production, policy_verifier=None,
                 invariant_policy_ids=(), config=None, devices=None):
        """A probe for a push about to start: baseline = production now.

        ``devices`` — the plan's device order — names every device the push
        will touch. When given, the frozen baseline deep-copies only those
        configs and shares the rest with production by reference: the push
        mutates exactly the named devices, and the copy owns those
        privately. The baseline plane itself is a compile-cache rebind
        (production's own plane re-keyed through ``same_except`` with an
        empty delta), so freezing the baseline re-hashes nothing.
        """
        config = config if config is not None else RolloutConfig()
        if config.probe_incremental:
            production_plane = build_dataplane(production, use_cache=True)
            baseline = (
                production.copy_except(devices) if devices is not None
                else production.copy()
            )
            plane = build_dataplane(
                baseline, baseline=production_plane, same_except=set(),
            )
        else:
            baseline = production.copy()
            plane = build_dataplane(baseline, use_cache=False)
        # The baseline network is our private copy; nothing mutates it.
        plane.assert_binding_intact()
        return cls(
            plane,
            policy_verifier=policy_verifier,
            invariant_policy_ids=invariant_policy_ids,
            incremental=config.probe_incremental,
            check_convergence=config.probe_convergence,
        )

    @classmethod
    def for_journal(cls, production, journal, policy_verifier=None,
                    config=None):
        """A probe for a crashed push: baseline rebuilt from the journal.

        At resume time production already carries the committed waves, so
        the pre-push state is reconstructed by restoring the journal's
        pre-push snapshot onto a copy (sharing every config the push never
        touches).
        """
        config = config if config is not None else (
            journal.rollout if journal.rollout is not None else RolloutConfig()
        )
        baseline = production.copy_except(list(journal.snapshot))
        for device, snapshot_config in journal.snapshot.items():
            baseline.configs[device] = snapshot_config.copy()
        plane = build_dataplane(baseline, use_cache=config.probe_incremental)
        plane.assert_binding_intact()
        return cls(
            plane,
            policy_verifier=policy_verifier,
            invariant_policy_ids=journal.invariant_policies or (),
            incremental=config.probe_incremental,
            check_convergence=config.probe_convergence,
        )

    def check(self, production, applied_devices, wave_index,
              fire_fault=True):
        """Probe the mixed-version state after a wave applied.

        ``applied_devices`` is the **cumulative** set of devices every
        committed-or-current wave touched — the probe's assertion that
        production matches the frozen baseline everywhere else.

        Returns a :class:`ProbeResult`; raises
        :class:`~repro.util.errors.HealthProbeError` only via the
        ``rollout.wave.probe_fail`` fault point (real violations are
        reported, not raised — the scheduler decides). ``fire_fault=False``
        skips that fault point: the scheduler's parallel wave groups fire
        it themselves, in wave order from the dispatching thread, so
        nth-based fault rules stay deterministic under concurrency.
        """
        _PROBES.inc()
        applied = set(applied_devices)
        with obs_trace.span(
            "rollout.probe", wave=wave_index, applied=len(applied),
            incremental=self.incremental,
        ) as span:
            if fire_fault:
                PROBE_FAIL_FAULT.fire(wave=wave_index, applied=len(applied))
            if self.incremental:
                plane = build_dataplane(
                    production,
                    baseline=self.baseline_plane,
                    same_except=applied,
                )
            else:
                plane = build_dataplane(production, use_cache=False)
            # The push loop is the plane's only consumer and nothing
            # mutates production until the probe verdict is in.
            plane.assert_binding_intact()
            if self.incremental:
                source = self._last_plane
                _seed_probe_traces(
                    source if source is not None else self.baseline_plane,
                    plane,
                )

            violations = ()
            checked = 0
            if self._invariant_verifier is not None:
                report = self._invariant_verifier.verify_dataplane(plane)
                checked = report.checked_count
                violations = tuple(sorted(
                    result.policy.policy_id
                    for result in report.violations
                    if result.policy.policy_id in self.invariants
                ))
            dead = ()
            if self.check_convergence:
                dead = tuple(sorted(
                    self._dead_next_hops_scoped(plane, applied)
                    - self.baseline_dead
                ))
            result = ProbeResult(
                wave_index=wave_index,
                policies_checked=checked,
                violations=violations,
                dead_routes=dead,
            )
            if not result.healthy:
                _PROBE_VIOLATIONS.inc()
            span.set(healthy=result.healthy, violations=len(violations),
                     dead_routes=len(dead))
            self._last_plane = plane
        return result

    def _dead_next_hops_scoped(self, plane, applied):
        """The convergence sweep, scoped to what ``applied`` can have moved.

        A router's dead set depends on its FIB and on the configs of the
        devices sharing its egress segments, so the sweep recomputes only
        routers that are applied, segment-adjacent to an applied device, or
        whose FIB object is no longer the baseline's; everything else
        reuses its baseline per-device set. Falls back to a full sweep when
        the segment table itself was rebuilt (adjacency may have moved).
        """
        base = self.baseline_plane
        if (
            self._baseline_dead_by_device is None
            or plane.artifacts is None
            or base.artifacts is None
            or plane.segments is not base.segments
        ):
            return self._dead_next_hops(plane)
        tainted = set(applied)
        for segment in plane.segments:
            members = set(segment.devices()) | segment.switches
            if applied & members:
                tainted |= members
        base_fibs = base.artifacts.fibs
        fibs = plane.artifacts.fibs
        dead = set()
        for device in plane.network.routers():
            if (
                device not in tainted
                and fibs.get(device) is base_fibs.get(device)
            ):
                dead.update(self._baseline_dead_by_device.get(device, ()))
            else:
                dead.update(self._dead_for_device(plane, device))
        return frozenset(dead)

    @classmethod
    def _dead_next_hops(cls, plane):
        """Routes whose next hop no live endpoint owns (convergence check).

        Pre-existing dead routes on the baseline are subtracted by the
        caller, so only deadness a wave *introduced* fails a probe.
        """
        dead = set()
        for device in plane.network.routers():
            dead.update(cls._dead_for_device(plane, device))
        return frozenset(dead)

    @staticmethod
    def _dead_for_device(plane, device):
        """One router's dead next hops, memoized on the compile artifacts.

        The set is a pure function of the snapshot content, so it lives in
        ``artifacts.dead_memo`` keyed by device — every plane rebound from
        the same fingerprint (repeated probes of one mixed-version state,
        re-probes after resume) reuses it.
        """
        memo = (
            plane.artifacts.dead_memo if plane.artifacts is not None else None
        )
        if memo is not None:
            cached = memo.get(device)
            if cached is not None:
                return cached
        dead = set()
        for route in plane.fib(device).routes():
            if route.next_hop is None:
                continue
            resolved = plane.resolve_next_hop(
                device, route.out_interface, route.next_hop
            )
            if resolved is None:
                dead.add(f"{device}: {route.prefix} via {route.next_hop}")
        dead = frozenset(dead)
        if memo is not None:
            memo[device] = dead
        return dead


def _seed_probe_traces(source_plane, plane):
    """Copy still-valid cached traces from one plane's artifacts to another.

    Forwarding traces are pure functions of the snapshot; a trace stays
    valid when nothing it depends on changed between the planes: the
    segment table is the identical object, every device on its path kept
    both its config fingerprint and its FIB object, and no changed device
    sits on a segment any path device touches (next-hop resolution reads
    neighbouring endpoint configs). Traces keyed with an implicit start
    (``start_device=None``) are skipped — their owner resolution scans
    every config globally.
    """
    base_art = source_plane.artifacts
    art = plane.artifacts
    if (
        base_art is None or art is None or art is base_art
        or art.trace_cache or not base_art.trace_cache
        or plane.segments is not source_plane.segments
    ):
        return
    base_fps = base_art.device_fingerprints
    changed = {
        device for device, fp in art.device_fingerprints.items()
        if base_fps.get(device) != fp
    }
    tainted = set(changed)
    for segment in plane.segments:
        members = set(segment.devices()) | segment.switches
        if changed & members:
            tainted |= members
    base_fibs = base_art.fibs
    fibs = art.fibs
    seeded = []
    for key, trace in base_art.trace_cache.items():
        _flow, start_device = key
        if start_device is None:
            continue
        path = trace.path()
        if tainted.isdisjoint(path) and all(
            fibs.get(device) is base_fibs.get(device) for device in path
        ):
            seeded.append((key, trace))
    if seeded:
        with art.trace_lock:
            for key, trace in seeded:
                art.trace_cache.setdefault(key, trace)


class CircuitBreaker:
    """Per-device transient-failure budget for one push.

    Every :class:`~repro.util.errors.TransientDeviceError` a device throws
    (across all waves and retries of the push) counts against its
    ``budget``; once spent, the breaker is *open* for that device and
    further applies must not be attempted — the scheduler raises
    :class:`~repro.util.errors.CircuitOpenError`, which is not retryable,
    so the wave fails fast and quarantines the device.
    """

    def __init__(self, budget=3):
        self.budget = max(1, budget)
        self.failures = {}  # device -> transient failures seen so far
        self.open_devices = set()

    def record(self, device):
        """Count one transient failure; returns True when this trip opened
        the device's breaker."""
        count = self.failures.get(device, 0) + 1
        self.failures[device] = count
        if count >= self.budget and device not in self.open_devices:
            self.open_devices.add(device)
            _BREAKER_TRIPS.inc()
            return True
        return False

    def tripped(self, device):
        return device in self.open_devices


def quarantine_devices(journal, devices, reason):
    """Mark ``devices`` quarantined in the journal (metric included)."""
    for device in devices:
        journal.mark_quarantine(device, reason)
        _QUARANTINED.inc()


def record_committed_wave():
    """Count one healthy, committed wave."""
    _WAVES.inc()


def record_parallel_probes(count):
    """Count ``count`` probes dispatched concurrently in one wave group."""
    if count:
        _PROBE_PARALLEL.inc(count)
