"""Staged canary rollouts: wave plans, health probes, circuit breakers.

The transactional push (docs/ROBUSTNESS.md) guarantees production ends in
one of two states, but a monolithic push still *transits* arbitrary
unverified intermediate states — and a single bad device takes every other
device's change down with it only after all of them applied. This module
supplies the three pieces that turn :meth:`ChangeScheduler.push` into a
staged deployment engine (docs/ARCHITECTURE.md "Staged rollout"):

* :class:`RolloutPlan` partitions the scheduler's ordered category batches
  into **waves** of devices — per-device by default, configurable wave
  size, explicit canary devices first — such that the concatenation of all
  wave batches is a permutation of the input and per-device change order
  is preserved;
* :class:`HealthProbe` compiles the **mixed-version dataplane** of the
  partially-updated production network after every wave (incrementally,
  against a frozen pre-push baseline plane, via the compile cache's
  ``same_except`` fast path) and checks the invariant policies plus a
  route-convergence sanity sweep against it;
* :class:`CircuitBreaker` counts transient apply failures per device
  across the whole push and refuses further applies to a device whose
  flap budget is spent, so one flapping device is quarantined instead of
  burning every wave's retry budget.

All three rollout fault points live here so the chaos campaigns (the
``canary`` campaign in :mod:`repro.faults.chaos`) can exercise probe
failures, device flaps, and mid-wave crashes deterministically.
"""

from dataclasses import dataclass, field

from repro import faults
from repro.control.builder import build_dataplane
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.errors import (
    HealthProbeError,
    PushCrashed,
    TransientDeviceError,
)

_WAVES = obs_metrics.counter(
    "rollout.waves", unit="waves",
    help="rollout waves fully applied and probed healthy",
)
_PROBES = obs_metrics.counter(
    "rollout.probes", unit="probes",
    help="post-wave health probes run on mixed-version dataplanes",
)
_PROBE_VIOLATIONS = obs_metrics.counter(
    "rollout.probe.violations", unit="probes",
    help="health probes that found an invariant violation or a dead route",
)
_QUARANTINED = obs_metrics.counter(
    "rollout.quarantined", unit="devices",
    help="devices quarantined by failed rollout waves",
)
_BREAKER_TRIPS = obs_metrics.counter(
    "rollout.breaker.trips", unit="devices",
    help="per-device circuit breakers opened by spent flap budgets",
)

# Fault points the canary chaos campaign arms (docs/ROBUSTNESS.md catalog).
PROBE_FAIL_FAULT = faults.fault_point(
    "rollout.wave.probe_fail", error=HealthProbeError,
    help="a post-wave health probe reports an invariant violation on the "
         "mixed-version dataplane; the wave's devices are quarantined and "
         "every applied wave rolls back",
)
FLAP_FAULT = faults.fault_point(
    "rollout.device.flap", error=TransientDeviceError,
    help="a device flaps during a staged wave apply; retried like any "
         "transient failure but counted against the device's circuit "
         "breaker, which quarantines it once the flap budget is spent",
)
MIDWAVE_CRASH_FAULT = faults.fault_point(
    "rollout.crash.midwave", error=PushCrashed,
    help="the pusher dies between waves or mid-wave; the journal's "
         "wave/probe markers let resume() replay only the uncommitted "
         "waves, re-probing each",
)


@dataclass(frozen=True)
class RolloutConfig:
    """How a push should be staged.

    ``wave_size`` devices advance per wave (1 = strict per-device canary);
    ``canary`` devices, when named, always form the leading wave(s);
    ``flap_budget`` transient failures per device open its circuit breaker;
    ``probe_incremental=False`` forces from-scratch probe compiles (the
    rollout benchmark's cold baseline); ``probe_convergence`` toggles the
    dead-next-hop sweep.
    """

    wave_size: int = 1
    canary: tuple = ()
    flap_budget: int = 3
    probe_incremental: bool = True
    probe_convergence: bool = True


@dataclass
class Wave:
    """One wave: a device group plus its slice of the ordered batches."""

    index: int
    devices: tuple
    batches: list = field(default_factory=list)  # list[list[ConfigChange]]
    batch_indices: list = field(default_factory=list)  # into the flat list

    @property
    def change_count(self):
        return sum(len(batch) for batch in self.batches)


class RolloutPlan:
    """A push's changes partitioned into ordered waves.

    Built from the scheduler's category batches: devices are grouped by
    first appearance in the flattened ordered change list (explicit canary
    devices promoted to the front), chunked into waves of
    ``config.wave_size``, and each wave's batches are the scheduled batches
    filtered to that wave's devices. Per-device change order is therefore
    exactly the scheduled order, and ``flat_batches`` — the concatenation
    of every wave's batches, which is what gets journaled — is a
    permutation of the input change set.
    """

    def __init__(self, waves, config):
        self.waves = list(waves)
        self.config = config
        self.flat_batches = []
        for wave in self.waves:
            wave.batch_indices = []
            for batch in wave.batches:
                wave.batch_indices.append(len(self.flat_batches))
                self.flat_batches.append(batch)

    @classmethod
    def from_batches(cls, batches, config=None):
        config = config if config is not None else RolloutConfig()
        order = []
        for batch in batches:
            for change in batch:
                if change.device not in order:
                    order.append(change.device)
        canary = [device for device in config.canary if device in order]
        rest = [device for device in order if device not in canary]
        ordered = canary + rest
        size = max(1, config.wave_size)
        waves = []
        for start in range(0, len(ordered), size):
            devices = tuple(ordered[start:start + size])
            wave_batches = [
                [change for change in batch if change.device in devices]
                for batch in batches
            ]
            wave_batches = [batch for batch in wave_batches if batch]
            waves.append(
                Wave(index=len(waves), devices=devices, batches=wave_batches)
            )
        return cls(waves, config)

    @property
    def device_order(self):
        return [device for wave in self.waves for device in wave.devices]

    def wave_plan(self):
        """The journal-ready description of the waves (plain data)."""
        return [
            {
                "index": wave.index,
                "devices": list(wave.devices),
                "batch_indices": list(wave.batch_indices),
            }
            for wave in self.waves
        ]

    def __len__(self):
        return len(self.waves)


@dataclass
class ProbeResult:
    """What one post-wave health probe found."""

    wave_index: int
    policies_checked: int = 0
    violations: tuple = ()  # invariant policy ids that broke
    dead_routes: tuple = ()  # newly dead next hops ("device: prefix via nh")

    @property
    def healthy(self):
        return not self.violations and not self.dead_routes

    def summary(self):
        if self.healthy:
            return (
                f"healthy: {self.policies_checked} invariants hold, "
                f"routes converged"
            )
        parts = []
        if self.violations:
            parts.append(f"invariants broken: {', '.join(self.violations)}")
        if self.dead_routes:
            parts.append(f"dead routes: {'; '.join(self.dead_routes)}")
        return "UNHEALTHY: " + "; ".join(parts)


class HealthProbe:
    """Verifies each intermediate (mixed-version) state of a staged push.

    The probe owns a **frozen pre-push baseline**: a private copy of
    production taken before the first wave, compiled once (a compile-cache
    hit — the verifier just compiled the same content). Probing after wave
    *k* compiles the live, partially-updated production incrementally
    against that baseline, asserting ``same_except`` the cumulative applied
    device set, so the mixed-version plane reuses every artifact the
    applied waves cannot have touched. The copy matters: an incremental
    compile reads the *old* configs through its baseline plane's network,
    and production mutates in place between waves — a baseline bound to
    production itself would silently see no diff.
    """

    def __init__(self, baseline_plane, policy_verifier=None,
                 invariant_policy_ids=(), incremental=True,
                 check_convergence=True):
        self.baseline_plane = baseline_plane
        self.policy_verifier = policy_verifier
        self.invariants = frozenset(invariant_policy_ids or ())
        self.incremental = incremental
        self.check_convergence = check_convergence
        self.baseline_dead = (
            self._dead_next_hops(baseline_plane)
            if check_convergence else frozenset()
        )

    @classmethod
    def for_push(cls, production, policy_verifier=None,
                 invariant_policy_ids=(), config=None):
        """A probe for a push about to start: baseline = production now."""
        config = config if config is not None else RolloutConfig()
        baseline = production.copy()
        plane = build_dataplane(baseline, use_cache=config.probe_incremental)
        # The baseline network is our private copy; nothing mutates it.
        plane.assert_binding_intact()
        return cls(
            plane,
            policy_verifier=policy_verifier,
            invariant_policy_ids=invariant_policy_ids,
            incremental=config.probe_incremental,
            check_convergence=config.probe_convergence,
        )

    @classmethod
    def for_journal(cls, production, journal, policy_verifier=None,
                    config=None):
        """A probe for a crashed push: baseline rebuilt from the journal.

        At resume time production already carries the committed waves, so
        the pre-push state is reconstructed by restoring the journal's
        pre-push snapshot onto a copy.
        """
        config = config if config is not None else (
            journal.rollout if journal.rollout is not None else RolloutConfig()
        )
        baseline = production.copy()
        for device, snapshot_config in journal.snapshot.items():
            baseline.configs[device] = snapshot_config.copy()
        plane = build_dataplane(baseline, use_cache=config.probe_incremental)
        plane.assert_binding_intact()
        return cls(
            plane,
            policy_verifier=policy_verifier,
            invariant_policy_ids=journal.invariant_policies or (),
            incremental=config.probe_incremental,
            check_convergence=config.probe_convergence,
        )

    def check(self, production, applied_devices, wave_index):
        """Probe the mixed-version state after a wave applied.

        ``applied_devices`` is the **cumulative** set of devices every
        committed-or-current wave touched — the probe's assertion that
        production matches the frozen baseline everywhere else.

        Returns a :class:`ProbeResult`; raises
        :class:`~repro.util.errors.HealthProbeError` only via the
        ``rollout.wave.probe_fail`` fault point (real violations are
        reported, not raised — the scheduler decides).
        """
        _PROBES.inc()
        applied = set(applied_devices)
        with obs_trace.span(
            "rollout.probe", wave=wave_index, applied=len(applied),
            incremental=self.incremental,
        ) as span:
            PROBE_FAIL_FAULT.fire(wave=wave_index, applied=len(applied))
            if self.incremental:
                plane = build_dataplane(
                    production,
                    baseline=self.baseline_plane,
                    same_except=applied,
                )
            else:
                plane = build_dataplane(production, use_cache=False)
            # The push loop is the plane's only consumer and nothing
            # mutates production until the probe verdict is in.
            plane.assert_binding_intact()

            violations = ()
            checked = 0
            if self.policy_verifier is not None and self.invariants:
                report = self.policy_verifier.verify_dataplane(plane)
                checked = report.checked_count
                violations = tuple(sorted(
                    result.policy.policy_id
                    for result in report.violations
                    if result.policy.policy_id in self.invariants
                ))
            dead = ()
            if self.check_convergence:
                dead = tuple(sorted(
                    self._dead_next_hops(plane) - self.baseline_dead
                ))
            result = ProbeResult(
                wave_index=wave_index,
                policies_checked=checked,
                violations=violations,
                dead_routes=dead,
            )
            if not result.healthy:
                _PROBE_VIOLATIONS.inc()
            span.set(healthy=result.healthy, violations=len(violations),
                     dead_routes=len(dead))
        return result

    @staticmethod
    def _dead_next_hops(plane):
        """Routes whose next hop no live endpoint owns (convergence check).

        Pre-existing dead routes on the baseline are subtracted by the
        caller, so only deadness a wave *introduced* fails a probe.
        """
        dead = set()
        for device in plane.network.routers():
            for route in plane.fib(device).routes():
                if route.next_hop is None:
                    continue
                resolved = plane.resolve_next_hop(
                    device, route.out_interface, route.next_hop
                )
                if resolved is None:
                    dead.add(f"{device}: {route.prefix} via {route.next_hop}")
        return frozenset(dead)


class CircuitBreaker:
    """Per-device transient-failure budget for one push.

    Every :class:`~repro.util.errors.TransientDeviceError` a device throws
    (across all waves and retries of the push) counts against its
    ``budget``; once spent, the breaker is *open* for that device and
    further applies must not be attempted — the scheduler raises
    :class:`~repro.util.errors.CircuitOpenError`, which is not retryable,
    so the wave fails fast and quarantines the device.
    """

    def __init__(self, budget=3):
        self.budget = max(1, budget)
        self.failures = {}  # device -> transient failures seen so far
        self.open_devices = set()

    def record(self, device):
        """Count one transient failure; returns True when this trip opened
        the device's breaker."""
        count = self.failures.get(device, 0) + 1
        self.failures[device] = count
        if count >= self.budget and device not in self.open_devices:
            self.open_devices.add(device)
            _BREAKER_TRIPS.inc()
            return True
        return False

    def tripped(self, device):
        return device in self.open_devices


def quarantine_devices(journal, devices, reason):
    """Mark ``devices`` quarantined in the journal (metric included)."""
    for device in devices:
        journal.mark_quarantine(device, reason)
        _QUARANTINED.inc()


def record_committed_wave():
    """Count one healthy, committed wave."""
    _WAVES.inc()
