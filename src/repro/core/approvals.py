"""Quorum approvals for high-risk changes (multi-party authorization).

Following Kinkelin et al. (arXiv:1903.08048, 1804.04798): a single
administrator — or a single compromised enforcer — must not be able to
wave a high-risk change into production alone. When the risk classifier
(:mod:`repro.core.enforcer.risk`) flags a session's change set, the
change enters this state machine:

    proposed -> approved | rejected        (clean quorum / clean veto)
    proposed -> mediated -> approved | rejected   (conflicting votes)

* **M-of-N quorum** — a configurable set of admin identities votes; the
  change is approved only when at least ``quorum`` of them approve and
  nobody objects.
* **Conflict mediation** — mixed votes move the request to ``mediated``;
  the mediator resolves by majority (a tie denies), and the mediation is
  itself a MAC-covered audit record.
* **Deny by default** — an unresponsive quorum (crashed approvers, or the
  injected ``approvals.timeout`` fault) times the round out; the charge
  lands on the simulated clock and the request is *rejected*, never
  silently granted.
* **Break-glass override** — a configured emergency actor may override a
  timed-out round; the override is granted but indelibly flagged in the
  audit trail (``approvals.break_glass``).

Every transition is written to the (tamper-evident, possibly replicated)
audit trail, so the approval history is covered by the same HMAC chain as
the change itself. The request is bound to the exact change set via a
content fingerprint — an approval cannot be replayed for a different set
of changes (:meth:`ApprovalRequest.covers`).
"""

import hashlib
import threading
from dataclasses import dataclass, field

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.errors import ApprovalTimeout, ApproverCrash
from repro.util.ids import IdAllocator

_REQUESTED = obs_metrics.counter(
    "approvals.requested", unit="requests",
    help="high-risk change sets that entered the approval state machine",
)
_VOTES = obs_metrics.counter(
    "approvals.votes", unit="votes",
    help="approver votes collected (crashed approvers excluded)",
)
_GRANTED = obs_metrics.counter(
    "approvals.granted", unit="requests",
    help="approval requests that ended granted (break-glass included)",
)
_DENIED = obs_metrics.counter(
    "approvals.denied", unit="requests",
    help="approval requests that ended rejected (deny-by-default included)",
)
_MEDIATED = obs_metrics.counter(
    "approvals.mediated", unit="requests",
    help="approval requests with conflicting votes resolved by mediation",
)
_TIMEOUTS = obs_metrics.counter(
    "approvals.timeouts", unit="requests",
    help="approval rounds that timed out before quorum",
)
_BREAK_GLASS = obs_metrics.counter(
    "approvals.break_glass", unit="requests",
    help="timed-out rounds overridden by the audited break-glass actor",
)

_LISTENER_ERRORS = obs_metrics.counter(
    "sessions.listener.error", unit="errors",
    help="progress-listener callbacks (wave or approval) that raised; "
         "swallowed so the push/round is never aborted by an observer",
)

_TIMEOUT_FAULT = faults.fault_point(
    "approvals.timeout", error=ApprovalTimeout,
    help="the approval round times out before quorum; the request is "
         "denied by default and the change set is never pushed",
)
_APPROVER_CRASH_FAULT = faults.fault_point(
    "approvals.approver.crash", error=ApproverCrash,
    help="an approver identity becomes unresponsive mid-round and "
         "abstains; quorum must be reached without it",
)

#: Request states. ``mediated`` is transitional; ``approved``/``rejected``
#: are terminal.
PROPOSED = "proposed"
MEDIATED = "mediated"
APPROVED = "approved"
REJECTED = "rejected"


def change_fingerprint(changes):
    """A content digest binding an approval to one exact change set.

    Order-independent: the scheduler may batch and reorder, but the set of
    atomic changes an approval covers must be byte-identical.
    """
    lines = sorted(
        f"{c.device}|{c.kind}|{c.path}|{c.old!r}|{c.new!r}" for c in changes
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


@dataclass(frozen=True)
class ApprovalConfig:
    """Who must approve, how many, and what happens on silence.

    ``votes`` simulates the admins' intent (approver -> ``"approve"`` |
    ``"reject"``; missing approvers approve). ``break_glass_actor``, when
    set, overrides a timed-out round instead of denying it — audited and
    flagged. ``risk`` optionally overrides the classifier's
    :class:`~repro.core.enforcer.risk.RiskConfig`.
    """

    approvers: tuple = ("admin-1", "admin-2", "admin-3")
    quorum: int = 2
    timeout_s: float = 900.0
    votes: dict = field(default_factory=dict)
    mediator: str = "mediator"
    break_glass_actor: str = ""
    risk: object = None  # RiskConfig | None
    # How long a granted approval stays usable. The scheduler refuses a
    # push whose approval is at or past its expiry instant — a grant
    # parked overnight cannot authorise tomorrow's push.
    grant_ttl_s: float = 3600.0

    def __post_init__(self):
        if not 1 <= self.quorum <= len(self.approvers):
            raise ValueError(
                f"quorum {self.quorum} outside 1..{len(self.approvers)} "
                f"approvers"
            )
        if self.grant_ttl_s <= 0:
            raise ValueError(
                f"grant_ttl_s must be > 0, got {self.grant_ttl_s}"
            )


@dataclass
class ApprovalRequest:
    """One high-risk change set moving through the state machine."""

    request_id: str
    actor: str  # the session proposing the change
    fingerprint: str
    risk: object  # the RiskAssessment that triggered the request
    change_count: int
    state: str = PROPOSED
    votes: dict = field(default_factory=dict)  # approver -> verdict
    crashed: list = field(default_factory=list)
    history: list = field(default_factory=list)  # state transitions
    reason: str = ""
    break_glass: bool = False
    timed_out: bool = False
    granted_at: float = None
    expires_at: float = None

    @property
    def granted(self):
        return self.state == APPROVED

    @property
    def terminal(self):
        return self.state in (APPROVED, REJECTED)

    def covers(self, changes):
        """Whether this approval binds to exactly ``changes``."""
        return self.fingerprint == change_fingerprint(changes)

    def expired(self, now):
        """Whether the grant is unusable at ``now`` (fails closed at the
        expiry instant itself: ``now == expires_at`` already denies)."""
        return self.expires_at is not None and now >= self.expires_at

    def summary(self):
        flags = []
        if self.break_glass:
            flags.append("break-glass")
        if self.timed_out:
            flags.append("timed-out")
        votes = ",".join(
            f"{who}={verdict}" for who, verdict in sorted(self.votes.items())
        ) or "none"
        return (
            f"{self.request_id} {self.state}"
            f"{' (' + ', '.join(flags) + ')' if flags else ''}: "
            f"votes [{votes}]"
            + (f"; crashed: {','.join(self.crashed)}" if self.crashed else "")
            + (f"; {self.reason}" if self.reason else "")
        )


class ApprovalCoordinator:
    """Runs approval rounds and writes their audit history.

    One coordinator serves one Heimdall deployment; ``listener`` (set by
    the sessions layer, mirroring the scheduler's wave listener) receives
    an event dict on every state transition so waiting sessions can watch
    approval progress the same way they watch push progress.
    """

    def __init__(self, config, audit=None, clock=None):
        self.config = config
        self.audit = audit
        self.clock = clock
        self.listener = None
        self.requests = {}  # request_id -> ApprovalRequest
        self._ids = IdAllocator()
        self._lock = threading.Lock()

    # -- the round ------------------------------------------------------------

    def require(self, actor, changes, risk):
        """Open a request for ``actor``'s change set; state ``proposed``."""
        with self._lock:
            request_id = self._ids.allocate("APPROVAL")
        request = ApprovalRequest(
            request_id=request_id,
            actor=actor,
            fingerprint=change_fingerprint(changes),
            risk=risk,
            change_count=len(list(changes)),
        )
        with self._lock:
            self.requests[request_id] = request
        _REQUESTED.inc()
        self._transition(
            request, PROPOSED,
            detail=risk.summary() if risk is not None else "",
        )
        self._audit(
            request, action="approvals.proposed", allowed=True,
            command=f"propose {request.request_id}: "
                    f"{request.change_count} changes; "
                    f"{risk.summary() if risk is not None else 'no score'}",
            outcome="awaiting quorum "
                    f"{self.config.quorum}/{len(self.config.approvers)}",
        )
        return request

    def collect(self, request):
        """Run the vote round to a terminal state; returns the request.

        Every responsive approver votes (per ``config.votes``; the
        ``approvals.approver.crash`` fault makes one abstain). A clean
        quorum approves; conflicting votes go to mediation; a vetoed or
        unresponsive round denies — unless the configured break-glass
        actor overrides the timeout, audited and flagged.
        """
        with obs_trace.span(
            "approvals.collect", request=request.request_id,
            approvers=len(self.config.approvers), quorum=self.config.quorum,
        ) as span:
            try:
                _TIMEOUT_FAULT.fire(request=request.request_id)
            except ApprovalTimeout:
                request.timed_out = True
            if not request.timed_out:
                self._gather_votes(request)
            self._decide(request)
            span.set(state=request.state, break_glass=request.break_glass)
        return request

    def break_glass(self, request, actor, justification=""):
        """Override a non-granted request; granted but indelibly flagged."""
        request.break_glass = True
        request.reason = (
            f"break-glass override by {actor}: "
            f"{justification or 'no justification'}"
        )
        _BREAK_GLASS.inc()
        self._audit(
            request, action="approvals.break_glass", allowed=True,
            actor=actor,
            command=f"break-glass {request.request_id}: "
                    f"{justification or 'no justification'}",
            outcome="override granted; flagged for review",
        )
        self._finish(request, APPROVED)
        return request

    # -- internals ------------------------------------------------------------

    def _gather_votes(self, request):
        for approver in self.config.approvers:
            try:
                _APPROVER_CRASH_FAULT.fire(
                    request=request.request_id, approver=approver,
                )
            except ApproverCrash:
                request.crashed.append(approver)
                continue
            verdict = self.config.votes.get(approver, "approve")
            request.votes[approver] = verdict
            _VOTES.inc()
            self._audit(
                request, action="approvals.vote",
                allowed=verdict == "approve", actor=approver,
                command=f"vote {verdict} on {request.request_id}",
                outcome=verdict,
            )

    def _decide(self, request):
        approvals = sum(
            1 for verdict in request.votes.values() if verdict == "approve"
        )
        rejections = len(request.votes) - approvals
        quorum = self.config.quorum

        if request.timed_out or approvals + rejections == 0:
            self._timeout(request)
            return
        if approvals >= quorum and rejections == 0:
            request.reason = f"quorum {approvals}/{quorum} approved"
            self._finish(request, APPROVED)
            return
        if approvals > 0 and rejections > 0:
            self._mediate(request, approvals, rejections)
            return
        if rejections > 0:
            request.reason = (
                "vetoed by "
                + ",".join(sorted(
                    who for who, verdict in request.votes.items()
                    if verdict != "approve"
                ))
            )
            self._finish(request, REJECTED)
            return
        # Some approvals but below quorum (the rest crashed): the round
        # can never reach M-of-N — that is a quorum timeout.
        self._timeout(request)

    def _mediate(self, request, approvals, rejections):
        """Conflicting votes: the mediator resolves by majority; tie denies."""
        request.state = MEDIATED
        _MEDIATED.inc()
        self._transition(
            request, MEDIATED,
            detail=f"{approvals} approve vs {rejections} reject",
        )
        upheld = approvals >= self.config.quorum and approvals > rejections
        request.reason = (
            f"mediated: {approvals} approve vs {rejections} reject -> "
            f"{'upheld' if upheld else 'denied'}"
        )
        self._audit(
            request, action="approvals.mediation",
            allowed=upheld, actor=self.config.mediator,
            command=f"mediate {request.request_id}: "
                    f"{approvals} approve vs {rejections} reject",
            outcome=request.reason,
        )
        self._finish(request, APPROVED if upheld else REJECTED)

    def _timeout(self, request):
        """Quorum unreachable: charge the timeout, then deny (or break glass)."""
        request.timed_out = True
        _TIMEOUTS.inc()
        if self.clock is not None:
            self.clock.advance(
                self.config.timeout_s, step="approval timeout"
            )
        if self.config.break_glass_actor:
            self.break_glass(
                request, self.config.break_glass_actor,
                justification="quorum timeout",
            )
            return
        request.reason = (
            f"quorum timeout after {self.config.timeout_s:g}s: "
            f"denied by default"
        )
        self._finish(request, REJECTED)

    def _finish(self, request, state):
        request.state = state
        if state == APPROVED and self.clock is not None:
            request.granted_at = self.clock.now
            request.expires_at = self.clock.now + self.config.grant_ttl_s
        (_GRANTED if state == APPROVED else _DENIED).inc()
        self._transition(request, state, detail=request.reason)
        self._audit(
            request, action="approvals.decision", allowed=request.granted,
            command=f"decide {request.request_id}: {request.summary()}",
            outcome=request.state,
        )

    def _transition(self, request, state, detail=""):
        request.history.append(state)
        listener = self.listener
        if listener is None:
            return
        try:
            listener({
                "actor": request.actor,
                "request_id": request.request_id,
                "state": state,
                "votes": dict(request.votes),
                "crashed": list(request.crashed),
                "quorum": self.config.quorum,
                "approvers": len(self.config.approvers),
                "break_glass": request.break_glass,
                "detail": detail,
            })
        except Exception:
            # A broken progress observer must never abort the round; the
            # decision (and its audit record) is the load-bearing output.
            _LISTENER_ERRORS.inc()

    def _audit(self, request, action, allowed, command, outcome, actor=None):
        if self.audit is None:
            return
        self.audit.record(
            actor=actor if actor is not None else request.actor,
            device="-",
            command=command,
            action=action,
            resource=f"approval:{request.request_id}",
            allowed=allowed,
            outcome=outcome,
        )
