"""The presentation layer: what the technician can see of the twin.

The technician gets a topology view of the scoped slice and monitored
consoles — never raw configs, images, or unmediated console handles (those
are emulation-layer property). This is the GUI/console half of the paper's
presentation/emulation decoupling.
"""

from dataclasses import dataclass

from repro.core.twin.monitor import MonitoredConsole
from repro.util.errors import EmulationError


@dataclass(frozen=True)
class TopologyView:
    """The visible slice: devices (name, kind) and links between them."""

    devices: tuple  # ((name, kind_value), ...)
    links: tuple  # ((device_a, iface_a, device_b, iface_b), ...)

    def device_names(self):
        return [name for name, _kind in self.devices]


class PresentationLayer:
    """Topology view + monitored console access for one twin."""

    def __init__(self, emnet, monitor):
        self._emnet = emnet
        self._monitor = monitor

    def topology_view(self):
        """The visible topology — only what was cloned into the twin."""
        topology = self._emnet.network.topology
        devices = tuple(
            sorted(
                (device.name, device.kind.value)
                for device in topology.devices()
            )
        )
        links = tuple(
            (link.a.device, link.a.name, link.b.device, link.b.name)
            for link in topology.links()
        )
        return TopologyView(devices=devices, links=links)

    def console(self, device):
        """A monitored console on an in-scope device.

        Out-of-scope devices simply do not exist in the twin — requesting
        one is an :class:`EmulationError`, exactly as if it were not cabled.
        """
        if device not in self._emnet.nodes:
            raise EmulationError(
                f"device {device!r} is not part of this twin network"
            )
        return MonitoredConsole(self._monitor, self._emnet.console(device))

    def visible_devices(self):
        """Names of devices the technician can open consoles on."""
        return sorted(self._emnet.nodes)
