"""Twin fidelity: does the scoped clone behave like production?

Paper challenge 2: "missing a relevant element could yield a different
failure scenario". This module quantifies that risk for a built twin — for
every flow between in-scope hosts, compare the twin's trace against the
production trace. A flow is *faithful* when its disposition matches (and,
within the twin's visible devices, its path agrees).

The scoping ablation uses this to show why neighbour-only twins mislead:
they don't just hide the root cause, they change what the technician
observes.
"""

from dataclasses import dataclass, field

from repro.dataplane.forwarding import trace_flow
from repro.net.flow import Flow


@dataclass(frozen=True)
class FidelityMismatch:
    """One flow whose twin behaviour diverges from production."""

    flow: Flow
    production_disposition: str
    twin_disposition: str

    def __str__(self):
        return (
            f"{self.flow}: production={self.production_disposition}, "
            f"twin={self.twin_disposition}"
        )


@dataclass
class FidelityReport:
    """Aggregate fidelity of one twin against one production data plane."""

    compared: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def faithful(self):
        return self.compared - len(self.mismatches)

    @property
    def fidelity_pct(self):
        if not self.compared:
            return 100.0
        return 100.0 * self.faithful / self.compared

    def summary(self):
        return (
            f"{self.faithful}/{self.compared} in-scope flows behave exactly "
            f"as in production ({self.fidelity_pct:.1f}%)"
        )


def measure_fidelity(twin, production_dataplane):
    """Compare the twin's data plane against production's, flow by flow.

    Probes every ordered pair of hosts that made it into the twin's scope —
    the flows a technician could actually test from inside the twin.
    """
    production = production_dataplane.network
    twin_dataplane = twin.emnet.dataplane()
    in_scope_hosts = [
        host for host in production.hosts() if host in twin.scope
    ]

    report = FidelityReport()
    for src in in_scope_hosts:
        for dst in in_scope_hosts:
            if src == dst:
                continue
            flow = Flow(
                src_ip=production.host_address(src),
                dst_ip=production.host_address(dst),
                protocol="icmp",
            )
            report.compared += 1
            production_trace = trace_flow(
                production_dataplane, flow, start_device=src
            )
            twin_trace = trace_flow(twin_dataplane, flow, start_device=src)
            if production_trace.disposition != twin_trace.disposition:
                report.mismatches.append(
                    FidelityMismatch(
                        flow=flow,
                        production_disposition=(
                            production_trace.disposition.value
                        ),
                        twin_disposition=twin_trace.disposition.value,
                    )
                )
    return report
