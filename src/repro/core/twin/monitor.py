"""The reference monitor between presentation and emulation layers.

Every command a technician types in the presentation layer is classified
(action, resource) by the target console, authorised against the
Privilege_msp, recorded in the audit trail, and only then executed in the
emulation layer (paper Figure 5d).
"""

from dataclasses import dataclass, field

from repro.emulation.console import CommandResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

_COMMANDS = obs_metrics.counter(
    "monitor.commands", unit="commands",
    help="commands mediated by the reference monitor",
)
_ALLOWED = obs_metrics.counter(
    "monitor.allowed", unit="commands",
    help="mediated commands the Privilege_msp authorised",
)
_DENIED = obs_metrics.counter(
    "monitor.denied", unit="commands",
    help="mediated commands refused before reaching the emulation layer",
)


@dataclass
class MonitorStats:
    """Counters the experiments report."""

    commands: int = 0
    allowed: int = 0
    denied: int = 0


class ReferenceMonitor:
    """Mediates console access for one technician session."""

    def __init__(self, privilege_spec, audit=None, actor="technician"):
        self.privilege_spec = privilege_spec
        self.audit = audit
        self.actor = actor
        self.stats = MonitorStats()
        self.decisions = []

    def execute(self, console, command):
        """Authorise then execute ``command`` on ``console``.

        Denied commands never reach the emulation layer; the technician sees
        an IOS-style authorization failure instead.

        Args:
            console: the emulation-layer console to (maybe) run on.
            command: the raw command line the technician typed.

        Returns:
            The :class:`~repro.emulation.console.CommandResult` — either the
            emulation layer's, or a synthetic authorization failure.
        """
        with obs_trace.span(
            "monitor.execute", device=console.device, command=command
        ) as span:
            action, resource = console.classify(command)
            decision = self.privilege_spec.evaluate(action, resource)
            self.decisions.append(decision)
            self.stats.commands += 1
            _COMMANDS.inc()
            span.set(action=action, allowed=decision.allowed)

            if decision.allowed:
                self.stats.allowed += 1
                _ALLOWED.inc()
                result = console.execute(command)
            else:
                self.stats.denied += 1
                _DENIED.inc()
                result = CommandResult(
                    device=console.device,
                    command=command,
                    ok=False,
                    action=action,
                    resource=resource,
                    error="% Authorization failed: denied by Privilege_msp",
                    mode_after=console.mode,
                )

            # Recorded inside the span so the audit entry carries this
            # mediation's trace/span ids (docs/OBSERVABILITY.md).
            if self.audit is not None:
                self.audit.record(
                    actor=self.actor,
                    device=console.device,
                    command=command,
                    action=action,
                    resource=resource,
                    allowed=decision.allowed,
                    outcome="ok" if result.ok else (result.error or "failed"),
                )
        return result


class MonitoredConsole:
    """A console handle that can only speak through the reference monitor."""

    def __init__(self, monitor, console):
        self._monitor = monitor
        self._console = console

    @property
    def device(self):
        return self._console.device

    @property
    def mode(self):
        return self._console.mode

    def execute(self, command):
        """Run one command, mediated."""
        return self._monitor.execute(self._console, command)

    def run_script(self, commands):
        """Run several commands; returns all results (stops on nothing)."""
        return [self.execute(command) for command in commands]
