"""The reference monitor between presentation and emulation layers.

Every command a technician types in the presentation layer is classified
(action, resource) by the target console, authorised against the
Privilege_msp, recorded in the audit trail, and only then executed in the
emulation layer (paper Figure 5d).

Execution runs under a **per-command time budget**: a command that exceeds
``command_timeout_s`` (or whose console dies mid-command — the
``monitor.timeout`` fault point) yields a synthetic denied-with-reason
:class:`~repro.emulation.console.CommandResult` and an audit record saying
so. The session never hangs, and a timed-out command is never silently
dropped from the trail (docs/ROBUSTNESS.md).
"""

from dataclasses import dataclass

from repro import faults
from repro.emulation.console import CommandResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.clock import monotonic_s
from repro.util.errors import MonitorTimeout

_COMMANDS = obs_metrics.counter(
    "monitor.commands", unit="commands",
    help="commands mediated by the reference monitor",
)
_ALLOWED = obs_metrics.counter(
    "monitor.allowed", unit="commands",
    help="mediated commands the Privilege_msp authorised",
)
_DENIED = obs_metrics.counter(
    "monitor.denied", unit="commands",
    help="mediated commands refused before reaching the emulation layer",
)
_TIMEOUTS = obs_metrics.counter(
    "monitor.timeouts", unit="commands",
    help="mediated commands aborted for exceeding the per-command budget",
)

_TIMEOUT_FAULT = faults.fault_point(
    "monitor.timeout", error=MonitorTimeout,
    help="an authorised command exceeds the monitor's per-command budget; "
         "the session gets a denied-with-reason result, never a hang",
)

# Generous default: emulated commands finish in microseconds, so only a
# genuinely wedged console (or the fault point) ever exceeds it.
DEFAULT_COMMAND_TIMEOUT_S = 5.0


@dataclass
class MonitorStats:
    """Counters the experiments report."""

    commands: int = 0
    allowed: int = 0
    denied: int = 0
    timeouts: int = 0


class ReferenceMonitor:
    """Mediates console access for one technician session.

    ``command_timeout_s`` is the wall-clock budget per mediated command;
    the emulation layer is synchronous, so enforcement is post-hoc (the
    result of an over-budget command is discarded, fail closed) plus the
    injectable ``monitor.timeout`` fault for chaos testing.
    """

    def __init__(self, privilege_spec, audit=None, actor="technician",
                 command_timeout_s=DEFAULT_COMMAND_TIMEOUT_S):
        self.privilege_spec = privilege_spec
        self.audit = audit
        self.actor = actor
        self.command_timeout_s = command_timeout_s
        self.stats = MonitorStats()
        self.decisions = []

    def execute(self, console, command):
        """Authorise then execute ``command`` on ``console``.

        Denied commands never reach the emulation layer; the technician sees
        an IOS-style authorization failure instead. Commands that exceed the
        per-command budget are aborted with a timeout failure — recorded in
        the audit trail like any other denial, never silently dropped.

        Args:
            console: the emulation-layer console to (maybe) run on.
            command: the raw command line the technician typed.

        Returns:
            The :class:`~repro.emulation.console.CommandResult` — either the
            emulation layer's, or a synthetic authorization/timeout failure.
        """
        with obs_trace.span(
            "monitor.execute", device=console.device, command=command
        ) as span:
            action, resource = console.classify(command)
            decision = self.privilege_spec.evaluate(action, resource)
            self.decisions.append(decision)
            self.stats.commands += 1
            _COMMANDS.inc()
            span.set(action=action, allowed=decision.allowed)

            timed_out = False
            if decision.allowed:
                self.stats.allowed += 1
                _ALLOWED.inc()
                try:
                    result = self._execute_within_budget(console, command)
                except MonitorTimeout as exc:
                    timed_out = True
                    result = self._timeout_result(
                        console, command, action, resource, exc
                    )
                    span.set(timed_out=True)
            else:
                self.stats.denied += 1
                _DENIED.inc()
                result = CommandResult(
                    device=console.device,
                    command=command,
                    ok=False,
                    action=action,
                    resource=resource,
                    error="% Authorization failed: denied by Privilege_msp",
                    mode_after=console.mode,
                )

            # Recorded inside the span so the audit entry carries this
            # mediation's trace/span ids (docs/OBSERVABILITY.md). A timeout
            # is recorded as denied-with-reason: the command's effect was
            # not observed, so the conservative verdict is "did not happen".
            if self.audit is not None:
                self.audit.record(
                    actor=self.actor,
                    device=console.device,
                    command=command,
                    action=action,
                    resource=resource,
                    allowed=decision.allowed and not timed_out,
                    outcome="ok" if result.ok else (result.error or "failed"),
                )
        return result

    def _execute_within_budget(self, console, command):
        """Run the command; raise :class:`MonitorTimeout` if over budget.

        The synchronous emulator cannot be preempted, so the budget check
        is post-hoc — but the over-budget result is discarded unseen, which
        is what makes the timeout fail closed.
        """
        _TIMEOUT_FAULT.fire(device=console.device, command=command)
        started = monotonic_s()
        result = console.execute(command)
        elapsed = monotonic_s() - started
        if self.command_timeout_s is not None and elapsed > self.command_timeout_s:
            raise MonitorTimeout(
                f"command exceeded {self.command_timeout_s}s budget",
                device=console.device, command=command,
                timeout_s=self.command_timeout_s,
            )
        return result

    def _timeout_result(self, console, command, action, resource, exc):
        self.stats.timeouts += 1
        _TIMEOUTS.inc()
        timeout_s = (
            exc.timeout_s if exc.timeout_s is not None
            else self.command_timeout_s
        )
        return CommandResult(
            device=console.device,
            command=command,
            ok=False,
            action=action,
            resource=resource,
            error=f"% Command timed out after {timeout_s}s: "
                  "denied (result not observed)",
            mode_after=console.mode,
        )


class MonitoredConsole:
    """A console handle that can only speak through the reference monitor."""

    def __init__(self, monitor, console):
        self._monitor = monitor
        self._console = console

    @property
    def device(self):
        return self._console.device

    @property
    def mode(self):
        return self._console.mode

    def execute(self, command):
        """Run one command, mediated."""
        return self._monitor.execute(self._console, command)

    def run_script(self, commands):
        """Run several commands; returns all results (stops on nothing)."""
        return [self.execute(command) for command in commands]
