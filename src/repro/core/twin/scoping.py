"""Task-driven twin scoping: which production elements does a ticket need?

The paper's Figure 5 frames the trade-off: cloning everything (``all``)
maximises feasibility but exposes the whole network; cloning only the
affected nodes' neighbourhood (``neighbor``) hides most of the network but
often omits the root cause. Heimdall's scope aims for both: every device
that could plausibly carry or influence traffic between the ticket's
endpoints, and nothing else.

:func:`scope_heimdall` takes the union of

* the **near-shortest-path ellipse** in the physical topology: devices ``v``
  with ``d(src, v) + d(v, dst) <= d(src, dst) + slack`` (two BFS runs) — the
  candidate detour corridor once the fault is fixed;
* the **traced forwarding paths** of the ticket flow in both directions,
  including the device where the flow currently dies;
* the L2 switches stitching the endpoints' broadcast domains (a VLAN fault
  lives on a switch that may be on no L3 path).
"""

import networkx as nx

from repro.control.l2 import compute_segments
from repro.dataplane.forwarding import trace_flow
from repro.util.errors import TopologyError


def scope_all(network, issue, dataplane=None):
    """Expose every device — the paper's ``All`` baseline (Figure 5b)."""
    return set(network.topology.device_names())


def scope_neighbor(network, issue, dataplane=None):
    """Affected endpoints plus their direct neighbours (Figure 5c)."""
    scope = set()
    for endpoint in issue.affected_devices:
        if not network.topology.has_device(endpoint):
            raise TopologyError(f"unknown ticket endpoint {endpoint!r}")
        scope.add(endpoint)
        scope.update(network.topology.neighbors(endpoint))
    return scope


def scope_path(network, issue, dataplane=None):
    """Only the devices the ticket flow currently traverses (both ways)."""
    dataplane = dataplane or _compile(network)
    scope = set(issue.affected_devices)
    scope.update(_traced_devices(network, dataplane, issue))
    return scope


def scope_heimdall(network, issue, dataplane=None, slack=2):
    """The task-driven Heimdall scope (Figure 5d); see module docstring."""
    dataplane = dataplane or _compile(network)
    src, dst = issue.affected_devices
    graph = network.topology.to_networkx()

    scope = {src, dst}
    scope.update(_ellipse(graph, src, dst, slack))
    scope.update(_traced_devices(network, dataplane, issue))
    scope.update(_l2_infrastructure(network, scope))
    return scope


SCOPING_STRATEGIES = {
    "all": scope_all,
    "neighbor": scope_neighbor,
    "path": scope_path,
    "heimdall": scope_heimdall,
}


def _compile(network):
    from repro.control.builder import build_dataplane

    return build_dataplane(network)


def _traced_devices(network, dataplane, issue):
    """Devices on the ticket flow's forward and reverse traces."""
    devices = set()
    flow = issue.ticket_flow(network)
    for probe, start in ((flow, issue.src_host), (flow.reversed(), issue.dst_host)):
        trace = trace_flow(dataplane, probe, start_device=start)
        devices.update(trace.path())
    return devices


def _ellipse(graph, src, dst, slack):
    """Devices on any path of length <= d(src, dst) + slack."""
    if src not in graph or dst not in graph:
        return set()
    dist_from_src = nx.single_source_shortest_path_length(graph, src)
    dist_from_dst = nx.single_source_shortest_path_length(graph, dst)
    if dst not in dist_from_src:
        # Physically partitioned (should not happen: cabling is static); fall
        # back to both components' near sides.
        return set()
    shortest = dist_from_src[dst]
    return {
        node
        for node in graph
        if node in dist_from_src
        and node in dist_from_dst
        and dist_from_src[node] + dist_from_dst[node] <= shortest + slack
    }


def _l2_infrastructure(network, scope):
    """Switches stitching the broadcast domains of in-scope endpoints."""
    segments = compute_segments(network)
    switches = set()
    for segment in segments:
        if any(device in scope for device, _iface in segment.endpoints):
            switches.update(segment.switches)
    return switches
