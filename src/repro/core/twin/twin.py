"""The twin network: a scoped, sanitised, monitored emulation of production.

Construction performs the full pipeline of paper §4.2:

1. **scope** — select the task-relevant device slice (strategy pluggable;
   ``heimdall`` by default);
2. **sanitise** — strip credentials from the cloned configs;
3. **emulate** — boot an :class:`~repro.emulation.network.EmulatedNetwork`
   over the slice (emulation layer);
4. **mediate** — wire a :class:`ReferenceMonitor` between the presentation
   layer and the consoles.

The twin also keeps the sanitised baseline snapshot: the enforcer later
diffs the technician's final configs against it to obtain the change set.
"""

from repro.config.diffing import diff_networks
from repro.core.twin.monitor import ReferenceMonitor
from repro.core.twin.presentation import PresentationLayer
from repro.core.twin.sanitize import sanitize_configs
from repro.core.twin.scoping import SCOPING_STRATEGIES
from repro.net.network import Network
from repro.util.errors import EmulationError


class TwinNetwork:
    """A running twin for one ticket (the paper's central isolation idea:
    technicians never touch production, only this scoped emulation).

    Args:
        production: the production :class:`~repro.net.network.Network`
            being cloned (never mutated by the twin).
        issue: the :class:`~repro.scenarios.issues.Issue` the ticket is for
            (drives scoping).
        privilege_spec: the generated Privilege_msp the reference monitor
            enforces.
        audit: optional :class:`~repro.core.enforcer.audit.AuditTrail`
            every mediated command is recorded in.
        strategy: scoping strategy name from
            :data:`~repro.core.twin.scoping.SCOPING_STRATEGIES`.
        dataplane: an already-compiled production data plane to reuse for
            scoping (compiled on demand otherwise).
    """

    def __init__(self, production, issue, privilege_spec, audit=None,
                 strategy="heimdall", dataplane=None):
        try:
            scope_fn = SCOPING_STRATEGIES[strategy]
        except KeyError:
            raise EmulationError(f"unknown scoping strategy {strategy!r}") from None
        self.issue = issue
        self.strategy = strategy
        self.scope = frozenset(scope_fn(production, issue, dataplane))

        # The production content this twin branched from, per scoped device.
        # The session manager compares these against production at submit
        # time to detect a stale base (docs/ARCHITECTURE.md "Concurrency
        # model"); computed before sanitising, on the real configs.
        from repro.control.cache import config_fingerprint

        self.base_fingerprints = {
            device: config_fingerprint(production.config(device))
            for device in sorted(self.scope)
            if device in production.configs
        }

        sliced = production.subset(self.scope)
        sanitised = Network(sliced.topology, sanitize_configs(sliced.configs))
        self.emnet = _boot(sanitised)
        self.baseline = self.emnet.current_configs()

        self.monitor = ReferenceMonitor(privilege_spec, audit=audit)
        self.presentation = PresentationLayer(self.emnet, self.monitor)

    # -- technician-facing -----------------------------------------------------

    def console(self, device):
        """A monitored console (the only way in).

        Args:
            device: a device name inside the twin's scope.

        Returns:
            A :class:`~repro.core.twin.monitor.MonitoredConsole` whose every
            command passes through the reference monitor.
        """
        return self.presentation.console(device)

    def topology_view(self):
        return self.presentation.topology_view()

    # -- enforcer-facing -----------------------------------------------------------

    def changes(self):
        """Semantic changes the technician made, relative to the baseline.

        Returns:
            A list of :class:`~repro.config.diffing.ConfigChange` — the
            change set the enforcer verifies (paper Figure 4 step 3).
        """
        return diff_networks(self.baseline, self.emnet.current_configs())

    def node_count(self):
        """Twin size (drives the simulated boot cost)."""
        return self.emnet.node_count()

    def issue_resolved(self):
        """Whether the ticket flow is delivered inside the twin."""
        return self.issue.is_resolved(self.emnet.network)


def _boot(network):
    from repro.emulation.network import EmulatedNetwork

    return EmulatedNetwork(network)
