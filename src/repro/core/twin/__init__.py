"""The twin network (paper §4.2): task-scoped, sanitised, monitored emulation."""

from repro.core.twin.monitor import MonitoredConsole, ReferenceMonitor
from repro.core.twin.presentation import PresentationLayer
from repro.core.twin.sanitize import sanitize_configs
from repro.core.twin.scoping import (
    SCOPING_STRATEGIES,
    scope_all,
    scope_heimdall,
    scope_neighbor,
    scope_path,
)
from repro.core.twin.twin import TwinNetwork

__all__ = [
    "MonitoredConsole",
    "PresentationLayer",
    "ReferenceMonitor",
    "SCOPING_STRATEGIES",
    "TwinNetwork",
    "sanitize_configs",
    "scope_all",
    "scope_heimdall",
    "scope_neighbor",
    "scope_path",
]
