"""Sanitise cloned configurations before they enter the twin network.

The paper's challenge 2: cloning "can expose sensitive data (e.g., an IPSec
key)". The twin's emulation layer therefore receives configs with every
credential-class item stripped — the behaviourally relevant state (routing,
ACLs, VLANs, addresses) is untouched, and since the enforcer diffs the
technician's output against the *sanitised baseline*, stripping never shows
up as a change to import.
"""

SANITIZED_FIELDS = ("enable_secret", "vty_password", "snmp_community")


def sanitize_config(config):
    """A credential-free deep copy of one device config."""
    clean = config.copy()
    for field_name in SANITIZED_FIELDS:
        setattr(clean, field_name, None)
    return clean


def sanitize_configs(configs):
    """Sanitise a dict of hostname -> DeviceConfig."""
    return {name: sanitize_config(config) for name, config in configs.items()}


def leaked_secrets(configs, text):
    """Secrets from ``configs`` appearing verbatim in ``text``.

    Used by tests and the audit examples to prove the twin leaks nothing.
    """
    leaks = []
    for name, config in configs.items():
        for field_name in SANITIZED_FIELDS:
            secret = getattr(config, field_name)
            if secret and secret in text:
                leaks.append((name, field_name, secret))
    return leaks
