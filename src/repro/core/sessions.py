"""Concurrent multi-ticket sessions against one production network.

The paper assumes many MSP technicians work tickets in parallel; this layer
makes that safe. A :class:`SessionManager` wraps one
:class:`~repro.core.heimdall.Heimdall` deployment and hands out
:class:`ManagedSession` objects that N threads can drive concurrently:

1. **Leases** — at open, a session acquires per-element leases over its
   twin's scoped device set from a shared :class:`LeaseManager`
   (shared-read / exclusive-write). Acquisition is all-or-nothing under one
   condition variable: a waiter holds no leases while it blocks, so there is
   no hold-and-wait and therefore no deadlock, regardless of element order.
2. **Optimistic imports** — every session records the per-device content
   fingerprints *and canonical serializations* of production at open (its
   *base*). At submit, the manager re-fingerprints production and classifies
   the drift **by config section** (:mod:`repro.config.semdiff`): drift that
   touches the same sections the session edited on the same device is a
   **conflict** (rejected with a MAC-covered audit record, nothing
   imported); drift in disjoint sections — even on an edited device — and
   drift on untouched devices is a **stale base**, resolved by the
   ``on_stale`` policy — ``"rebase"`` re-verifies the candidate against
   *current* production (the verifier always judges against live state, so
   a rebase is exactly one fresh verification) or ``"reject"``. A
   fingerprint mismatch whose semantic diff is empty (a
   serialization-stable rewrite) is not drift at all.
3. **Push queue** — opens and submits serialize through a single production
   lock, so snapshots are never torn and every
   :meth:`~repro.core.enforcer.scheduler.ChangeScheduler.push` runs alone
   against production, preserving the journal/rollback invariants. Twin
   console work (the long part of a ticket) runs outside the lock, fully
   concurrent.

See docs/ARCHITECTURE.md "Concurrency model" and the
``python -m repro.cli bench --concurrent N`` stress benchmark.
"""

import threading
from dataclasses import dataclass, field

from repro import faults
from repro.config import semdiff
from repro.config.parser import parse_config
from repro.control.builder import build_dataplane
from repro.control.cache import snapshot_fingerprint, snapshot_texts
from repro.core.twin.scoping import SCOPING_STRATEGIES
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.clock import monotonic_s
from repro.util.errors import (
    LeaseError,
    LeaseTimeout,
    SessionError,
    StaleBaseError,
)
from repro.util.ids import IdAllocator

_LEASES_ACQUIRED = obs_metrics.counter(
    "sessions.leases.acquired", unit="leases",
    help="per-element leases granted to concurrent sessions",
)
_LEASE_WAIT_MS = obs_metrics.histogram(
    "sessions.lease.wait.ms", unit="ms",
    help="wall-clock milliseconds a session blocked acquiring its leases",
)
_QUEUE_WAIT_MS = obs_metrics.histogram(
    "sessions.queue.wait.ms", unit="ms",
    help="wall-clock milliseconds a submit waited in the push queue",
)
_QUEUE_DEPTH = obs_metrics.gauge(
    "sessions.queue.depth", unit="sessions",
    help="submits currently waiting for the serialized push queue",
)
_CONFLICTS = obs_metrics.counter(
    "sessions.conflicts", unit="sessions",
    help="submits rejected because production drifted on devices the "
         "session itself changed",
)
_STALE_BASES = obs_metrics.counter(
    "sessions.stale_bases", unit="sessions",
    help="submits whose recorded base no longer matched production",
)
_REBASES = obs_metrics.counter(
    "sessions.rebases", unit="sessions",
    help="stale-base submits re-verified against current production",
)
_SEMANTIC_REBASES = obs_metrics.counter(
    "sessions.rebase.semantic", unit="sessions",
    help="rebases where an *edited* device drifted in sections disjoint "
         "from the session's own edits (would have been a spurious "
         "conflict under fingerprint-level classification)",
)
_OVERLAPS = obs_metrics.counter(
    "sessions.overlaps", unit="sessions",
    help="sessions opened with a twin scope overlapping a live session's",
)

_LEASE_TIMEOUT_FAULT = faults.fault_point(
    "sessions.lease.timeout", error=LeaseTimeout,
    help="a lease acquisition times out instead of blocking; the ticket "
         "is refused before any twin is booted",
)
_STALE_FAULT = faults.fault_point(
    "sessions.base.stale", error=StaleBaseError,
    help="a submit is forced down the stale-base reject path regardless "
         "of actual drift; audited and nothing imported",
)
_SEMDIFF_BYPASS_FAULT = faults.fault_point(
    "sessions.semdiff.bypass", error=SessionError,
    help="section classification of base drift is bypassed; every "
         "fingerprint-drifted device is treated as fully drifted "
         "(conservative fingerprint-level classification)",
)

#: Lease/concurrency modes for :meth:`SessionManager.open_ticket`.
MODES = ("lease", "optimistic")


class LeaseManager:
    """Shared-read / exclusive-write leases over network elements.

    All requested elements are granted **atomically**: the caller blocks on
    one condition variable until the whole set is free, then takes it in one
    step. A blocked caller owns nothing (sessions acquire exactly once, at
    open, before holding any lease), so the classic hold-and-wait deadlock
    ingredient is absent by construction; element sets are processed in
    sorted order so grants, metrics, and error messages are deterministic.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = {}  # element -> set of owner tokens
        self._writers = {}  # element -> owner token

    def acquire(self, owner, read=(), write=(), timeout_s=None):
        """Block until ``owner`` holds all leases; returns the wait in ms.

        Args:
            owner: opaque owner token (one per session).
            read: elements to share-read lease.
            write: elements to exclusively lease (wins over ``read``).
            timeout_s: give up after this many seconds (``None`` blocks
                forever).

        Raises:
            LeaseTimeout: the set stayed contested past ``timeout_s`` (or
                the ``sessions.lease.timeout`` fault point fired). Nothing
                is held afterwards — acquisition is all-or-nothing.
        """
        write = frozenset(write)
        read = frozenset(read) - write
        _LEASE_TIMEOUT_FAULT.fire(owner=owner)
        started = monotonic_s()
        with self._cond:
            granted = self._cond.wait_for(
                lambda: self._grantable(owner, read, write),
                timeout=timeout_s,
            )
            if not granted:
                contested = sorted(self._contested(owner, read, write))
                raise LeaseTimeout(
                    f"lease request by {owner} timed out after "
                    f"{timeout_s}s on {', '.join(contested)}",
                    elements=contested,
                )
            self._grant(owner, read, write)
        waited_ms = (monotonic_s() - started) * 1000.0
        _LEASES_ACQUIRED.inc(len(read) + len(write))
        _LEASE_WAIT_MS.observe(waited_ms)
        return waited_ms

    def try_extend(self, owner, read=(), write=()):
        """Grant extra leases to ``owner`` only if free right now.

        Non-blocking on purpose: extension happens while the caller already
        holds leases (and the production lock), where waiting could
        deadlock. Returns ``True`` on grant, ``False`` untouched otherwise.
        """
        write = frozenset(write)
        read = frozenset(read) - write
        with self._cond:
            if not self._grantable(owner, read, write):
                return False
            self._grant(owner, read, write)
        _LEASES_ACQUIRED.inc(len(read) + len(write))
        return True

    def release(self, owner):
        """Drop every lease ``owner`` holds and wake all waiters."""
        with self._cond:
            for element in list(self._writers):
                if self._writers[element] == owner:
                    del self._writers[element]
            for element in list(self._readers):
                holders = self._readers[element]
                holders.discard(owner)
                if not holders:
                    del self._readers[element]
            self._cond.notify_all()

    def holders(self, element):
        """``(writer, readers)`` snapshot for one element."""
        with self._cond:
            return (
                self._writers.get(element),
                frozenset(self._readers.get(element, ())),
            )

    # -- under self._cond ----------------------------------------------------

    def _grantable(self, owner, read, write):
        for element in sorted(write):
            holder = self._writers.get(element)
            if holder is not None and holder != owner:
                return False
            if any(r != owner for r in self._readers.get(element, ())):
                return False
        for element in sorted(read):
            holder = self._writers.get(element)
            if holder is not None and holder != owner:
                return False
        return True

    def _grant(self, owner, read, write):
        for element in write:
            self._writers[element] = owner
        for element in read:
            self._readers.setdefault(element, set()).add(owner)

    def _contested(self, owner, read, write):
        contested = []
        for element in write:
            writer = self._writers.get(element)
            if (writer is not None and writer != owner) or any(
                r != owner for r in self._readers.get(element, ())
            ):
                contested.append(element)
        for element in read:
            writer = self._writers.get(element)
            if writer is not None and writer != owner:
                contested.append(element)
        return contested


@dataclass
class SessionOutcome:
    """How one managed session ended.

    ``status`` is the concurrency-control disposition:

    * ``"clean"`` — base unchanged; candidate verified and (if approved)
      imported;
    * ``"rebased"`` — base drifted only in sections the session did *not*
      edit (on any device); re-verified against current production and (if
      approved) imported;
    * ``"conflict"`` — base drifted in sections the session itself edited
      on the same device; the original candidate is rejected outright,
      nothing imported;
    * ``"stale-rejected"`` — base drifted and the manager's ``on_stale``
      policy is ``"reject"`` (or the ``sessions.base.stale`` fault fired).

    ``drifted`` lists devices with *semantic* drift; ``drift_sections``
    maps each of them to the frozenset of config sections that changed
    (see :mod:`repro.config.semdiff`). ``ticket_outcome`` is the
    underlying :class:`~repro.core.heimdall.TicketOutcome` for
    clean/rebased submits and ``None`` for rejections (the ticket is
    abandoned, not enforced).
    """

    session_id: str
    issue_id: str
    status: str
    drifted: tuple = ()
    change_count: int = 0
    reason: str = ""
    ticket_outcome: object = None
    drift_sections: dict = field(default_factory=dict)

    @property
    def imported(self):
        """Whether the session's changes landed in production."""
        return (
            self.ticket_outcome is not None
            and self.ticket_outcome.approved
            and self.change_count > 0
        )

    @property
    def rejected(self):
        return self.status in ("conflict", "stale-rejected")


class ManagedSession:
    """One technician's leased, fingerprinted ticket session.

    Thin delegation around the wrapped
    :class:`~repro.core.heimdall.TicketSession` — console work is exactly
    the plain Heimdall experience — plus the concurrency-control state the
    manager needs: the lease owner token, the recorded base fingerprints,
    and the scopes of live sessions it overlapped at open.
    """

    def __init__(self, manager, ticket, lease_owner, read, write,
                 base_fingerprints, overlaps, base_texts=None):
        self._manager = manager
        self.ticket = ticket
        self.lease_owner = lease_owner
        self.read_leases = frozenset(read)
        self.write_leases = frozenset(write)
        self.base_fingerprints = dict(base_fingerprints)
        self.base_texts = dict(base_texts or {})
        self.overlaps = dict(overlaps)  # session_id -> shared elements
        self.state = "open"  # open | submitted | abandoned

    @property
    def session_id(self):
        return self.ticket.session_id

    @property
    def issue(self):
        return self.ticket.issue

    @property
    def twin(self):
        return self.ticket.twin

    # -- technician actions (delegated) --------------------------------------

    def console(self, device):
        return self.ticket.console(device)

    def execute(self, device, command):
        return self.ticket.execute(device, command)

    def run_fix_script(self, fix_script):
        return self.ticket.run_fix_script(fix_script)

    def request_escalation(self, requested_profile, justification=""):
        return self.ticket.request_escalation(requested_profile, justification)

    # -- completion ----------------------------------------------------------

    def submit(self):
        """Classify drift, then verify/import or reject; see manager."""
        return self._manager.submit(self)

    def abandon(self, reason=""):
        """Release leases and close without importing anything."""
        return self._manager.abandon(self, reason)


class SessionManager:
    """Runs N concurrent ticket sessions against one Heimdall deployment.

    Args:
        heimdall: the shared :class:`~repro.core.heimdall.Heimdall`.
        on_stale: ``"rebase"`` (default) re-verifies stale-base submits
            against current production; ``"reject"`` refuses them.
        lease_timeout_s: default lease-acquisition timeout (``None``
            blocks forever; sessions pass their own per-open override).
    """

    def __init__(self, heimdall, on_stale="rebase", lease_timeout_s=None):
        if on_stale not in ("rebase", "reject"):
            raise SessionError(
                f"unknown on_stale policy {on_stale!r}; "
                f"expected 'rebase' or 'reject'"
            )
        self.heimdall = heimdall
        self.on_stale = on_stale
        self.lease_timeout_s = lease_timeout_s
        self.leases = LeaseManager()
        # The single queue in front of ChangeScheduler.push: opens
        # (snapshot + twin clone) and submits (classify + verify + push)
        # serialize here, so production is never read or written torn.
        self._production_lock = threading.Lock()
        self._registry_lock = threading.Lock()
        self._live = {}  # session_id -> ManagedSession
        self._owners = IdAllocator()
        self._depth_lock = threading.Lock()
        self._queue_depth = 0
        # Wave-granular progress of staged pushes, keyed by the pushing
        # session id. The scheduler fires the listener from inside the
        # (serialized) push body; sessions waiting in the queue read it to
        # see how far the current holder's rollout has advanced.
        self._progress_lock = threading.Lock()
        self._push_progress = {}
        heimdall.scheduler.wave_listener = self._on_wave_event
        # Approval-state progress, same pattern as push progress: the
        # coordinator fires the listener on every state transition of a
        # high-risk change's quorum round.
        self._approval_progress = {}
        if heimdall.approvals is not None:
            heimdall.approvals.listener = self._on_approval_event

    # -- opening -------------------------------------------------------------

    def open_ticket(self, issue, profile=None, strategy=None,
                    exempt_devices=(), mode="lease", write_devices=None,
                    lease_timeout_s=None):
        """Lease the issue's scope, then open a ticket on the shared twin.

        Args:
            issue: the :class:`~repro.scenarios.issues.Issue` to work.
            profile: task profile override (see
                :meth:`~repro.core.heimdall.Heimdall.open_ticket`).
            strategy: twin scoping strategy override.
            exempt_devices: devices released from policy guard rules.
            mode: ``"lease"`` takes exclusive write leases on the devices
                the fix is expected to touch (``write_devices``, defaulting
                to the fix script's devices plus the root cause) and shared
                reads on the rest of the scope; ``"optimistic"`` takes
                shared reads only and resolves conflicts at submit.
            write_devices: explicit exclusive-lease set (``"lease"`` mode).
            lease_timeout_s: per-open lease timeout override.

        Returns:
            A :class:`ManagedSession`.

        Raises:
            LeaseTimeout: the lease set stayed contested past the timeout.
            LeaseError: production re-scoped between leasing and cloning
                and the extra elements were not free (retry the open).
        """
        if mode not in MODES:
            raise SessionError(
                f"unknown session mode {mode!r}; expected one of {MODES}"
            )
        timeout_s = (
            lease_timeout_s if lease_timeout_s is not None
            else self.lease_timeout_s
        )
        strategy_name = strategy or self.heimdall.scoping_strategy
        owner = self._owners.allocate("LEASE")
        with obs_trace.span(
            "sessions.open", issue=issue.issue_id, mode=mode
        ) as open_span:
            # Scope under the production lock: scoping reads live configs,
            # which a concurrent push may be rewriting.
            with self._production_lock:
                dataplane = build_dataplane(self.heimdall.production)
                scope = frozenset(
                    SCOPING_STRATEGIES[strategy_name](
                        self.heimdall.production, issue, dataplane
                    )
                )
            read, write = self._lease_sets(issue, scope, mode, write_devices)
            with obs_trace.span(
                "sessions.lease", owner=owner,
                read=len(read), write=len(write),
            ) as lease_span:
                waited_ms = self.leases.acquire(
                    owner, read=read, write=write, timeout_s=timeout_s
                )
                lease_span.set(wait_ms=round(waited_ms, 3))
            try:
                with self._production_lock:
                    ticket = self.heimdall.open_ticket(
                        issue, profile=profile, strategy=strategy,
                        exempt_devices=exempt_devices,
                    )
                    # Production may have been re-shaped between scoping
                    # and cloning; top up leases for any new elements
                    # without blocking (blocking here, holding leases and
                    # the production lock, could deadlock).
                    missing = ticket.twin.scope - (read | write)
                    if missing and not self.leases.try_extend(
                        owner, read=missing
                    ):
                        ticket.abandon("lease set changed during open")
                        raise LeaseError(
                            f"scope of {issue.issue_id} changed while "
                            f"leasing; retry the open",
                            elements=sorted(missing),
                        )
                    read = frozenset(read | missing)
                    base_texts, base_fps = snapshot_texts(
                        self.heimdall.production
                    )
            except Exception:
                self.leases.release(owner)
                raise
            session = ManagedSession(
                self, ticket, owner, read, write, base_fps,
                self._register(ticket, scope | missing),
                base_texts=base_texts,
            )
            open_span.set(
                session_id=ticket.session_id,
                scope=len(ticket.twin.scope),
                overlaps=len(session.overlaps),
            )
        return session

    def _lease_sets(self, issue, scope, mode, write_devices):
        if mode == "optimistic":
            return frozenset(scope), frozenset()
        if write_devices is not None:
            write = frozenset(write_devices) & scope
        else:
            write = (
                {step.device for step in issue.fix_script}
                | {issue.root_cause_device}
            ) & scope
        return frozenset(scope) - write, frozenset(write)

    def _register(self, ticket, scope):
        """Record the session as live; returns its overlaps with others."""
        overlaps = {}
        with self._registry_lock:
            for other_id, other in self._live.items():
                shared = scope & other.twin.scope
                if shared:
                    overlaps[other_id] = tuple(sorted(shared))
            self._live[ticket.session_id] = ticket
        if overlaps:
            _OVERLAPS.inc()
        return overlaps

    def _unregister(self, session):
        with self._registry_lock:
            self._live.pop(session.session_id, None)

    # -- completion ----------------------------------------------------------

    def submit(self, session):
        """Serialize through the push queue; classify, then enforce/reject.

        Returns:
            A :class:`SessionOutcome`. Clean and rebased submits carry the
            wrapped :class:`~repro.core.heimdall.TicketOutcome`; conflicts
            and stale rejects abandon the ticket after writing a
            MAC-covered audit record naming the drifted devices.
        """
        self._require_open(session)
        with obs_trace.span(
            "sessions.submit", parent=session.ticket.span,
            session_id=session.session_id,
        ) as span:
            self._enter_queue()
            started = monotonic_s()
            self._production_lock.acquire()
            try:
                self._exit_queue()
                waited_ms = (monotonic_s() - started) * 1000.0
                _QUEUE_WAIT_MS.observe(waited_ms)
                span.set(queue_wait_ms=round(waited_ms, 3))
                outcome = self._classify_and_finish(session, span)
            finally:
                self._production_lock.release()
                self.leases.release(session.lease_owner)
                self._unregister(session)
        return outcome

    def abandon(self, session, reason=""):
        """Close a session without importing; leases are released."""
        self._require_open(session)
        session.state = "abandoned"
        try:
            return session.ticket.abandon(reason)
        finally:
            self.leases.release(session.lease_owner)
            self._unregister(session)

    # -- under the production lock -------------------------------------------

    def _classify_and_finish(self, session, span):
        changes = session.twin.changes()
        edited_sections = semdiff.sections_by_device(changes)
        forced = ""
        try:
            _STALE_FAULT.fire(session=session.session_id)
        except StaleBaseError as exc:
            forced = str(exc) or "injected stale base"
        drift_sections = self._drift_sections(session)
        drifted = tuple(sorted(drift_sections))
        span.set(changes=len(changes), drifted=len(drifted))

        conflicting = sorted(
            device for device, sections in drift_sections.items()
            if sections & edited_sections.get(device, frozenset())
        )
        if forced:
            status, reason = "stale-rejected", forced
        elif conflicting:
            status = "conflict"
            reason = "production drifted in edited sections: " + ", ".join(
                f"{device}({'/'.join(sorted(drift_sections[device] & edited_sections[device]))})"
                for device in conflicting
            )
        elif drifted and self.on_stale == "reject":
            status = "stale-rejected"
            reason = "base drifted on: " + ", ".join(drifted)
        elif drifted:
            status, reason = "rebased", ""
        else:
            status, reason = "clean", ""
        span.set(status=status)

        if status in ("conflict", "stale-rejected"):
            (_CONFLICTS if status == "conflict" else _STALE_BASES).inc()
            self._audit_rejection(session, status, reason, changes)
            session.state = "submitted"
            session.ticket.abandon(f"{status}: {reason}")
            return SessionOutcome(
                session_id=session.session_id,
                issue_id=session.issue.issue_id,
                status=status,
                drifted=drifted,
                change_count=len(changes),
                reason=reason,
                drift_sections=drift_sections,
            )

        if status == "rebased":
            _STALE_BASES.inc()
            _REBASES.inc()
            # Drift on a device the session itself edited, in disjoint
            # sections, is the case fingerprint-level classification used
            # to reject as a spurious conflict — audit it distinctly.
            semantic = sorted(set(drifted) & set(edited_sections))
            if semantic:
                _SEMANTIC_REBASES.inc()
            # MAC-covered record that this candidate was judged against a
            # newer production than it branched from.
            detail = ", ".join(
                f"{device}({'/'.join(sorted(drift_sections[device]))})"
                for device in drifted
            )
            self.heimdall.audit.record(
                actor=session.session_id,
                device="-",
                command=f"rebase onto current production; drift on {detail}",
                action=(
                    "sessions.rebase.semantic" if semantic
                    else "sessions.rebase"
                ),
                resource="production",
                allowed=True,
                outcome="re-verified against current production",
            )
        session.state = "submitted"
        ticket_outcome = session.ticket.submit()
        return SessionOutcome(
            session_id=session.session_id,
            issue_id=session.issue.issue_id,
            status=status,
            drifted=drifted,
            change_count=len(changes),
            ticket_outcome=ticket_outcome,
            drift_sections=drift_sections,
        )

    def _drift_sections(self, session):
        """Section-classify base drift: device -> changed section set.

        Fingerprint comparison finds candidate devices cheaply; only those
        are semantically diffed against the session's recorded base text.
        Devices whose fingerprint moved but whose semantic diff is empty
        (serialization-stable rewrites) are dropped — they are not drift.
        Devices added or removed since open, or any device when the
        ``sessions.semdiff.bypass`` fault fires, are treated conservatively
        as drifted in every section.
        """
        _, _, current = snapshot_fingerprint(self.heimdall.production)
        base = session.base_fingerprints
        suspects = sorted(
            device
            for device in set(base) | set(current)
            if base.get(device) != current.get(device)
        )
        bypass = False
        try:
            _SEMDIFF_BYPASS_FAULT.fire(session=session.session_id)
        except SessionError:
            bypass = True
        drift_sections = {}
        for device in suspects:
            base_text = session.base_texts.get(device)
            live = self.heimdall.production.configs.get(device)
            if bypass or base_text is None or live is None:
                drift_sections[device] = semdiff.ALL_SECTIONS
                continue
            sections = semdiff.changed_sections(
                parse_config(base_text, hostname=device), live
            )
            if sections:
                drift_sections[device] = sections
        return drift_sections

    def _audit_rejection(self, session, status, reason, changes):
        self.heimdall.audit.record(
            actor=session.session_id,
            device="-",
            command=f"submit {len(changes)} changes: {reason}",
            action=f"sessions.{'conflict' if status == 'conflict' else 'stale'}",
            resource="production",
            allowed=False,
            outcome="rejected; original candidate not imported",
        )

    # -- small helpers -------------------------------------------------------

    def _require_open(self, session):
        if session.state != "open":
            raise SessionError(
                f"session {session.session_id} already {session.state}"
            )

    def _enter_queue(self):
        with self._depth_lock:
            self._queue_depth += 1
            _QUEUE_DEPTH.set(self._queue_depth)

    def _exit_queue(self):
        with self._depth_lock:
            self._queue_depth -= 1
            _QUEUE_DEPTH.set(self._queue_depth)

    def live_sessions(self):
        """Session ids currently open (diagnostics, tests)."""
        with self._registry_lock:
            return sorted(self._live)

    # -- staged-push progress --------------------------------------------------

    def _on_wave_event(self, event):
        """Scheduler wave-listener: record a staged push's wave transition.

        Runs inside the serialized push body (under the production lock),
        so the only concurrency here is readers via :meth:`push_progress`;
        the progress lock keeps the per-actor record consistent for them.
        """
        with self._progress_lock:
            record = self._push_progress.setdefault(
                event["actor"],
                {"push_id": event["push_id"], "waves": event["waves"],
                 "events": []},
            )
            if record["push_id"] != event["push_id"]:
                # A new push by the same session supersedes the old record.
                record = {"push_id": event["push_id"],
                          "waves": event["waves"], "events": []}
                self._push_progress[event["actor"]] = record
            record["events"].append({
                "wave": event["wave"],
                "devices": list(event["devices"]),
                "status": event["status"],
            })
            record["wave"] = event["wave"]
            record["status"] = event["status"]

    def push_progress(self, session_id=None):
        """Wave-granular progress of staged pushes.

        Returns the progress record for ``session_id`` (``None`` when that
        session never ran a staged push), or a dict of all records when no
        id is given. Records are snapshots — safe to read while a push is
        in flight.
        """
        with self._progress_lock:
            if session_id is not None:
                record = self._push_progress.get(session_id)
                return dict(record) if record is not None else None
            return {
                actor: dict(record)
                for actor, record in self._push_progress.items()
            }

    # -- approval progress -----------------------------------------------------

    def _on_approval_event(self, event):
        """Approvals listener: record a quorum round's state transition.

        Fires inside the serialized submit body (the coordinator runs
        under the production lock), mirroring :meth:`_on_wave_event`; the
        progress lock keeps records consistent for concurrent readers.
        """
        with self._progress_lock:
            record = self._approval_progress.setdefault(
                event["actor"],
                {"request_id": event["request_id"], "states": []},
            )
            if record["request_id"] != event["request_id"]:
                # A newer request by the same session supersedes the old.
                record = {"request_id": event["request_id"], "states": []}
                self._approval_progress[event["actor"]] = record
            record["states"].append(event["state"])
            record["state"] = event["state"]
            record["votes"] = dict(event["votes"])
            record["crashed"] = list(event["crashed"])
            record["quorum"] = event["quorum"]
            record["approvers"] = event["approvers"]
            record["break_glass"] = event["break_glass"]
            record["detail"] = event["detail"]

    def approval_progress(self, session_id=None):
        """Quorum-approval progress of high-risk submits.

        Returns the approval record for ``session_id`` (``None`` when that
        session never triggered the high-risk gate), or a dict of all
        records when no id is given — the same surface
        :meth:`push_progress` provides for staged pushes.
        """
        with self._progress_lock:
            if session_id is not None:
                record = self._approval_progress.get(session_id)
                return dict(record) if record is not None else None
            return {
                actor: dict(record)
                for actor, record in self._approval_progress.items()
            }
