"""The Heimdall orchestrator: the three-step workflow of paper Figure 4.

1. A Privilege_msp is generated for the ticket (task-driven, policy-guarded);
2. the technician resolves the ticket on an isolated twin network;
3. the policy enforcer verifies the twin's changes and imports the approved
   ones into the production network in a safe order.

All durations are charged to a :class:`~repro.util.clock.SimulatedClock`
through a :class:`~repro.util.clock.CostModel`, which is what the Figure 7
pilot study measures.

When the observability layer (:mod:`repro.obs`) is enabled, every session
carries a root span (``heimdall.session``) that the whole lifecycle hangs
off — ticket open, privilege generation, twin boot, each mediated command,
and the enforcer's verify/import — and every audit record written along the
way carries that trace's id (see docs/OBSERVABILITY.md).
"""

from dataclasses import dataclass, field

from repro.control.builder import build_dataplane
from repro.core.approvals import ApprovalCoordinator
from repro.core.enforcer.audit import AuditTrail, ReplicatedAuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.risk import RiskClassifier
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.core.enforcer.verifier import ChangeVerifier
from repro.core.privilege.generator import (
    TASK_PROFILES,
    escalate,
    generate_privilege_spec,
    profile_for_issue,
)
from repro.core.privilege.translator import policy_guard_rules
from repro.core.twin.monitor import MonitoredConsole, ReferenceMonitor
from repro.core.twin.scoping import SCOPING_STRATEGIES
from repro.core.twin.twin import TwinNetwork
from repro.obs import trace as obs_trace
from repro.policy.mining import mine_policies
from repro.util.clock import CostModel, SimulatedClock
from repro.util.errors import PrivilegeError, TenancyError
from repro.util.ids import IdAllocator

# Profiles a ticket class may escalate into (paper §7: escalations move from
# more to less restrictive as diagnosis progresses). Anything else is an
# invalid escalation and is refused + audited.
ESCALATION_LADDER = {
    "monitoring": ("interface",),
    "interface": ("routing",),
    "routing": ("acl",),
    "vlan": ("interface",),
    "connectivity": ("acl",),
    "acl": (),
}


@dataclass
class TicketOutcome:
    """Everything the experiments need to know about one resolved ticket."""

    issue_id: str
    approved: bool
    resolved: bool
    changes: list
    decision: object
    denied_commands: int
    command_count: int
    duration_s: float
    breakdown: dict = field(default_factory=dict)


class Heimdall:
    """One Heimdall deployment guarding one production network.

    A deployment may serve many concurrent sessions: the shared mutable
    state here — the id allocator, the audit trail, the simulated clock,
    and the scheduler's push counter — is individually thread-safe, but
    ``open_ticket`` (production snapshot + twin clone) and ``enforce``
    (verify + push) read/write production itself and must not interleave.
    :class:`repro.core.sessions.SessionManager` provides that serialization
    plus per-element leases and stale-base detection; drive concurrent
    tickets through it rather than calling this class from N threads.
    """

    def __init__(self, production=None, policies=None,
                 scoping_strategy="heimdall",
                 clock=None, cost_model=None, max_workers=None, rollout=None,
                 approvals=None, audit_replicas=0, audit_quorum=None,
                 tenants=None, org_id=""):
        # Multi-tenant service mode: N org-isolated deployments behind one
        # admission front door (docs/ARCHITECTURE.md "Tenancy & front
        # door"). All work routes through self.frontdoor; the single-tenant
        # surface on this instance stays unusable (fail closed).
        if tenants is not None:
            from repro.core.frontdoor import FrontDoor

            if production is not None:
                raise TenancyError(
                    "pass either production= (single tenant) or tenants= "
                    "(multi-tenant front door), not both"
                )
            self.frontdoor = FrontDoor(
                tenants, approvals=approvals,
                audit_replicas=audit_replicas, audit_quorum=audit_quorum,
            )
            self.production = None
            self.org_id = ""
            return
        if production is None:
            raise TenancyError(
                "a single-tenant Heimdall needs a production network; "
                "multi-tenant service goes through "
                "Heimdall(tenants=...).frontdoor"
            )
        self.frontdoor = None
        self.org_id = org_id
        self.production = production
        self.policies = (
            list(policies) if policies is not None else mine_policies(production)
        )
        self.scoping_strategy = scoping_strategy
        self.max_workers = max_workers  # verifier parallelism (None = serial)
        # Staged canary imports: a RolloutConfig makes every approved push
        # wave-based with post-wave health probes (docs/ARCHITECTURE.md
        # "Staged rollout"); None keeps monolithic transactional pushes.
        self.rollout = rollout
        self.clock = clock if clock is not None else SimulatedClock()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.enclave = SimulatedEnclave()
        # audit_replicas >= 1 replaces the single chain with a replicated
        # trail: N independent HMAC chains, quorum-voted reads, fail-closed
        # appends (docs/ROBUSTNESS.md "Approvals & replicated tamper
        # evidence").
        # Chain keys are org-scoped so no two tenants' trails ever share
        # sealing material — a forged cross-tenant record can't verify.
        if audit_replicas:
            self.audit = ReplicatedAuditTrail(
                self.enclave, clock=self.clock, replicas=audit_replicas,
                quorum=audit_quorum,
                key_prefix=(
                    f"{org_id}:audit-replica" if org_id else "audit-replica"
                ),
            )
        else:
            self.audit = AuditTrail(
                self.enclave, clock=self.clock,
                key_id=f"{org_id}:audit-trail" if org_id else "audit-trail",
            )
        self.scheduler = ChangeScheduler()
        # An ApprovalConfig turns on the high-risk quorum gate: enforce()
        # scores every approved change set and routes over-threshold ones
        # through the approvals state machine before the push.
        if approvals is not None:
            self.approvals = ApprovalCoordinator(
                approvals, audit=self.audit, clock=self.clock
            )
            self.risk_classifier = RiskClassifier(config=approvals.risk)
        else:
            self.approvals = None
            self.risk_classifier = None
        self._ids = IdAllocator()

    # -- workflow step 1+2: privilege and twin -------------------------------

    def open_ticket(self, issue, profile=None, strategy=None,
                    exempt_devices=()):
        """Generate the Privilege_msp and boot the twin for ``issue``.

        ``exempt_devices`` releases named devices from the policy-derived
        guard rules — the admin's lever when a ticket must touch a policy
        enforcement point (e.g. the broken thing *is* an ACL). Exemptions
        are a conscious, per-ticket decision, never automatic.

        Args:
            issue: the :class:`~repro.scenarios.issues.Issue` being worked.
            profile: task profile override (inferred from the issue class
                when omitted).
            strategy: twin scoping strategy override.
            exempt_devices: devices released from policy guard rules.

        Returns:
            A :class:`TicketSession` holding the booted twin, the generated
            Privilege_msp, and (when observability is on) the session's
            root span.
        """
        if self.production is None:
            raise TenancyError(
                "this Heimdall fronts multiple tenants; route work through "
                "heimdall.frontdoor with a capability token"
            )
        strategy = strategy or self.scoping_strategy
        profile = profile or profile_for_issue(issue)

        session_span = obs_trace.start_span(
            "heimdall.session", issue=issue.issue_id
        )
        with obs_trace.span("ticket.open", parent=session_span):
            with obs_trace.span("twin.scope", strategy=strategy):
                dataplane = build_dataplane(self.production)
                scope = SCOPING_STRATEGIES[strategy](
                    self.production, issue, dataplane
                )
            with obs_trace.span("privilege.generate", profile=profile):
                guards = policy_guard_rules(
                    self.policies, dataplane, exempt_devices=exempt_devices
                )
                spec = generate_privilege_spec(
                    scope, profile, extra_rules=guards
                )
            self.clock.advance(
                self.cost_model.privilege_generation_s,
                step="generate privilege",
            )

            with obs_trace.span("twin.boot") as boot_span:
                twin = TwinNetwork(
                    self.production, issue, spec,
                    audit=self.audit, strategy=strategy, dataplane=dataplane,
                )
                boot_span.set(nodes=twin.node_count())
            self.clock.advance(
                self.cost_model.twin_boot_s(twin.node_count()),
                step="twin setup",
            )
        session_id = self._ids.allocate(
            f"{self.org_id}:SESSION" if self.org_id else "SESSION"
        )
        session_span.set(session_id=session_id)
        return TicketSession(
            self, issue, twin, spec, profile, session_id, span=session_span
        )

    # -- workflow step 3: verify + import ----------------------------------------

    def enforce(self, session):
        """Verify the twin's change set and import approved changes.

        With an approvals configuration, verifier-approved change sets are
        additionally risk-scored; high-risk sets must win an M-of-N quorum
        round (:mod:`repro.core.approvals`) before the scheduler will push
        them. A denied round leaves the decision's ``approval`` in its
        rejected state and imports nothing — deny by default.

        Args:
            session: the :class:`TicketSession` being closed out.

        Returns:
            The verifier's
            :class:`~repro.core.enforcer.verifier.EnforcementDecision`
            (``risk``/``approval`` carry the quorum outcome when the gate
            ran).
        """
        with obs_trace.span("enforcer.enforce", parent=session.span):
            changes = session.twin.changes()
            verifier = ChangeVerifier(
                self.policies, session.privilege_spec,
                max_workers=self.max_workers,
            )
            decision = verifier.verify(self.production, changes)
            self.clock.advance(
                self.cost_model.verify_s(verifier.constraint_count),
                step="verify changes",
            )
            self.audit.record(
                actor=session.session_id,
                device="-",
                command=f"submit {len(changes)} changes",
                action="enforcer.verify",
                resource="production",
                allowed=decision.approved,
                outcome=decision.summary(),
            )
            approval = None
            if decision.approved and changes and self.approvals is not None:
                decision.risk = self.risk_classifier.assess(
                    self.production, changes
                )
                if decision.risk.high:
                    request = self.approvals.require(
                        session.session_id, changes, decision.risk
                    )
                    decision.approval = self.approvals.collect(request)
                    if not decision.approval.granted:
                        # Deny by default: the verifier approved the
                        # change, but the quorum did not — nothing is
                        # pushed, and the refusal is on the record.
                        self.audit.record(
                            actor=session.session_id,
                            device="-",
                            command=f"push refused: "
                                    f"{decision.approval.summary()}",
                            action="enforcer.approval",
                            resource="production",
                            allowed=False,
                            outcome="unapproved high-risk change not pushed",
                        )
                        return decision
                    approval = decision.approval
            if decision.approved and changes:
                with obs_trace.span(
                    "production.import", changes=len(changes)
                ):
                    batches = self.scheduler.schedule(changes)
                    # Transactional: the push journals, retries transient
                    # device failures, and rolls back to the pre-push
                    # snapshot on fatal/audit failure. A simulated pusher
                    # crash (PushCrashed) propagates with the journal for
                    # scheduler.resume(). With a rollout config the push
                    # is additionally staged into health-probed waves; the
                    # probes check the policies this verification pass
                    # proved invariant across the full change set.
                    rollout_kwargs = {}
                    if self.rollout is not None:
                        rollout_kwargs = {
                            "rollout": self.rollout,
                            "policy_verifier": verifier.policy_verifier,
                            "invariant_policy_ids":
                                decision.invariant_policy_ids(),
                        }
                    push_report = self.scheduler.push(
                        self.production, changes, batches=batches,
                        audit=self.audit, actor=session.session_id,
                        clock=self.clock, risk=decision.risk,
                        approval=approval, **rollout_kwargs,
                    )
                    decision.push_report = push_report
                    self.clock.advance(
                        len(changes) * (
                            self.cost_model.schedule_per_change_s
                            + self.cost_model.commit_per_change_s
                        ),
                        step="schedule + commit",
                    )
                    if push_report.committed:
                        for change in changes:
                            self.audit.record(
                                actor=session.session_id,
                                device=change.device,
                                command=change.summary(),
                                action=change.action,
                                resource=change.device,
                                allowed=True,
                                outcome="committed",
                            )
        return decision

    # -- extension: emergency mode (paper §7) --------------------------------------

    def emergency_console(self, device, privilege_spec):
        """A monitored console directly on production, bypassing the twin.

        Still mediated: emergency mode relaxes *where* commands run, never
        *whether* they are authorised or audited.
        """
        from repro.emulation.network import EmulatedNetwork

        attached = EmulatedNetwork.attached(self.production)
        monitor = ReferenceMonitor(
            privilege_spec, audit=self.audit, actor="emergency"
        )
        return MonitoredConsole(monitor, attached.console(device))


class TicketSession:
    """A technician's working session on one twin.

    ``span`` is the session's observability root
    (:data:`~repro.obs.trace.NULL_SPAN` while the layer is disabled); it
    stays open across calls and is finished by :meth:`submit` or
    :meth:`abandon`.
    """

    def __init__(self, heimdall, issue, twin, privilege_spec, profile,
                 session_id, span=obs_trace.NULL_SPAN):
        self._heimdall = heimdall
        self.issue = issue
        self.twin = twin
        self.privilege_spec = privilege_spec
        self.profile = profile
        self.session_id = session_id
        self.span = span
        self.command_count = 0
        self.escalations = []
        self._consoles = {}

    # -- technician actions -----------------------------------------------------

    def console(self, device):
        """A monitored console inside the twin (persistent per session,
        so configuration mode survives across :meth:`execute` calls)."""
        if device not in self._consoles:
            self._consoles[device] = self.twin.console(device)
        return self._consoles[device]

    def execute(self, device, command):
        """Run one command on ``device``, charging its simulated cost.

        Args:
            device: twin device name to run on.
            command: the raw command line.

        Returns:
            The mediated :class:`~repro.emulation.console.CommandResult`.
        """
        with obs_trace.span(
            "twin.command", parent=self.span, device=device, command=command
        ):
            result = self.console(device).execute(command)
        self.command_count += 1
        self._charge(command)
        return result

    def run_fix_script(self, fix_script):
        """Replay a prepared fix script; returns all command results."""
        results = []
        for step in fix_script:
            for command in step.commands:
                results.append(self.execute(step.device, command))
        return results

    def _charge(self, command):
        cost_model = self._heimdall.cost_model
        if command.startswith(("write", "copy")):
            self._heimdall.clock.advance(
                cost_model.save_config_s, step="save changes"
            )
            return
        if self._is_config_command(command):
            seconds = cost_model.command_config_s
        else:
            seconds = cost_model.command_s
        self._heimdall.clock.advance(seconds, step="perform operations")

    @staticmethod
    def _is_config_command(command):
        head = command.split()[0] if command.split() else ""
        return head not in ("show", "ping", "traceroute")

    # -- extension: privilege escalation (paper §7) ----------------------------------

    def request_escalation(self, requested_profile, justification=""):
        """Ask for an additional task profile mid-ticket.

        Valid requests follow the escalation ladder for the session's
        profile; anything else (unknown profile, skipping rungs) is refused.
        Both outcomes are audited — distinguishing valid escalations from
        subversive ones is exactly the open question the paper flags, so the
        conservative ladder errs toward refusal.
        """
        valid = (
            requested_profile in TASK_PROFILES
            and requested_profile in ESCALATION_LADDER.get(self.profile, ())
        )
        escalation_span = obs_trace.span(
            "privilege.escalation", parent=self.span,
            requested=requested_profile, granted=valid,
        )
        with escalation_span:
            self._record_escalation(requested_profile, justification, valid)
        if not valid:
            raise PrivilegeError(
                f"escalation from {self.profile!r} to {requested_profile!r} "
                "refused"
            )
        escalate(self.privilege_spec, self.twin.scope, requested_profile)
        self.escalations.append(requested_profile)
        self.profile = requested_profile
        return True

    def _record_escalation(self, requested_profile, justification, valid):
        self._heimdall.audit.record(
            actor=self.session_id,
            device="-",
            command=f"escalate {self.profile} -> {requested_profile}: "
                    f"{justification or 'no justification'}",
            action="privilege.escalation",
            resource="privilege_msp",
            allowed=valid,
            outcome="granted" if valid else "refused",
        )

    # -- completion ------------------------------------------------------------------

    def submit(self):
        """Close the session: verify, import, and report the outcome.

        Returns:
            A :class:`TicketOutcome` summarising the enforcer's decision,
            resolution status, and the simulated time breakdown.
        """
        start = self._heimdall.clock.now
        decision = self._heimdall.enforce(self)
        resolved = self.issue.is_resolved(self._heimdall.production)
        self.span.set(approved=decision.approved, resolved=resolved)
        self.span.finish()
        return TicketOutcome(
            issue_id=self.issue.issue_id,
            approved=decision.approved,
            resolved=resolved,
            changes=decision.changes,
            decision=decision,
            denied_commands=self.twin.monitor.stats.denied,
            command_count=self.command_count,
            duration_s=self._heimdall.clock.now,
            breakdown=dict(self._heimdall.clock.breakdown()),
        )

    def abandon(self, reason=""):
        """Close without importing anything (changes are discarded)."""
        with obs_trace.span("session.abandon", parent=self.span):
            self._heimdall.audit.record(
                actor=self.session_id,
                device="-",
                command=f"abandon: {reason}",
                action="enforcer.abandon",
                resource="production",
                allowed=True,
                outcome="no changes imported",
            )
        self.span.set(abandoned=True)
        self.span.finish()
        return None
