"""Tenant registry and capability tokens for a multi-org Heimdall service.

The paper's least-privilege argument is sharpest when one Heimdall
deployment watches many customers: an MSP technician must never touch —
or even observe — another org's network. This module provides the two
primitives the front door (:mod:`repro.core.frontdoor`) builds on:

* **TenantRegistry** — org_id -> tenant lookup behind a lock. Every
  admission resolves its org here first; an unknown org (or the injected
  ``tenancy.registry.crash``) **fails closed** before any tenant state is
  read.
* **TokenAuthority** — short-lived capability tokens per org. A token is
  MAC-sealed under an *org-scoped* enclave key (``capability-<org>``), so
  a token minted for org A cannot verify on org B's authority, let alone
  be forged. Validation is deny-by-default in every dimension: MAC, org
  binding, revocation/replay, clock-charged expiry (the expiry instant
  itself already denies), and scope membership. Every refusal is counted
  (``tenancy.tokens.denied``; cross-tenant and forged presentations also
  on ``tenancy.violation``) and written as a MAC-covered refusal record
  on the *victim* org's audit chain.
* **Break-glass elevation** — :meth:`TokenAuthority.elevate` grants an
  extra scope mid-incident by running the org's quorum-approvals state
  machine (:mod:`repro.core.approvals`); an override granted via the
  break-glass actor is indelibly flagged and counted
  (``tenancy.break_glass``).

Timestamps come from the org's :class:`~repro.util.clock.SimulatedClock`
and keys from its :class:`~repro.core.enforcer.enclave.SimulatedEnclave`,
so token histories are deterministic run-to-run like everything else.
"""

import hashlib
import hmac as hmac_module
import threading
from dataclasses import dataclass, replace

from repro import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.errors import (
    CapabilityDeniedError,
    TenancyError,
    TenantIsolationError,
    TenantRegistryError,
    TokenExpiredError,
    TokenForgedError,
    TokenReplayError,
)

_VIOLATIONS = obs_metrics.counter(
    "tenancy.violation", unit="refusals",
    help="cross-tenant or forged-credential accesses refused fail-closed "
         "(each also leaves a MAC-covered refusal record on the victim "
         "org's audit chain)",
)
_TOKENS_ISSUED = obs_metrics.counter(
    "tenancy.tokens.issued", unit="tokens",
    help="capability tokens minted by per-org token authorities",
)
_TOKENS_DENIED = obs_metrics.counter(
    "tenancy.tokens.denied", unit="refusals",
    help="capability-token validations refused (forged, cross-tenant, "
         "replayed, expired, or missing the required scope)",
)
_BREAK_GLASS = obs_metrics.counter(
    "tenancy.break_glass", unit="grants",
    help="scope elevations granted via the audited break-glass override "
         "of the org's approvals machinery",
)

_THEFT_FAULT = faults.fault_point(
    "tenancy.token.theft", error=TenantIsolationError,
    help="a presented token is flagged as stolen cross-tenant material; "
         "refused fail-closed, counted as a tenancy violation, and the "
         "refusal is MAC-audited on the victim org's chain",
)
_REPLAY_FAULT = faults.fault_point(
    "tenancy.token.replay", error=TokenReplayError,
    help="a revoked (or already-spent) token is presented again; the "
         "replay is refused and audited",
)
_EXPIRED_FAULT = faults.fault_point(
    "tenancy.token.expired", error=TokenExpiredError,
    help="a token loses the expiry race mid-validation (expires between "
         "admission and use); denied exactly like a naturally expired "
         "token",
)
_REGISTRY_CRASH_FAULT = faults.fault_point(
    "tenancy.registry.crash", error=TenantRegistryError,
    help="the tenant registry dies mid-admission; the request is refused "
         "fail-closed before any tenant state is touched",
)

#: Scopes the default tenant specs grant. Scopes are plain strings checked
#: by set membership — deny by default, no wildcard matching.
DEFAULT_SCOPES = ("session.open", "session.submit", "audit.read")


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant org for the front door.

    ``network`` is the org's production network; ``policies`` its mined
    policy set (mined from the network when ``None``). The admission knobs
    bound what the org may ask of the shared service: ``queue_limit``
    requests parked, ``rate_per_s``/``burst`` token-bucket admission rate,
    ``workers`` bulkhead threads, and ``quota`` total admissions (``None``
    = unlimited). ``token_ttl_s`` is the capability-token lifetime.
    """

    org_id: str
    network: object
    policies: object = None
    queue_limit: int = 8
    rate_per_s: float = 50.0
    burst: int = 8
    workers: int = 2
    quota: int = None
    token_ttl_s: float = 900.0
    scopes: tuple = DEFAULT_SCOPES

    def __post_init__(self):
        if not self.org_id:
            raise TenancyError("tenant spec needs a non-empty org_id")
        if self.queue_limit < 1:
            raise TenancyError(
                f"{self.org_id}: queue_limit must be >= 1, "
                f"got {self.queue_limit}"
            )
        if self.workers < 1:
            raise TenancyError(
                f"{self.org_id}: workers must be >= 1, got {self.workers}"
            )
        if self.burst < 1:
            raise TenancyError(
                f"{self.org_id}: burst must be >= 1, got {self.burst}"
            )
        if self.rate_per_s < 0:
            raise TenancyError(
                f"{self.org_id}: rate_per_s must be >= 0, "
                f"got {self.rate_per_s}"
            )
        if self.token_ttl_s <= 0:
            raise TenancyError(
                f"{self.org_id}: token_ttl_s must be > 0, "
                f"got {self.token_ttl_s}"
            )


@dataclass(frozen=True)
class CapabilityToken:
    """One short-lived, org-bound, scope-limited technician credential."""

    token_id: str
    org_id: str
    subject: str
    scopes: frozenset
    issued_at: float
    expires_at: float
    mac: str = ""

    def canonical(self):
        """The byte string the MAC covers (everything except the MAC)."""
        parts = (
            self.token_id, self.org_id, self.subject,
            ",".join(sorted(self.scopes)), self.issued_at, self.expires_at,
        )
        return "|".join(repr(part) for part in parts).encode()

    def summary(self):
        return (
            f"{self.token_id} org={self.org_id} subject={self.subject} "
            f"scopes=[{','.join(sorted(self.scopes))}] "
            f"expires={self.expires_at:g}"
        )


@dataclass(frozen=True)
class _ElevationGrant:
    """The change-shaped object an elevation round fingerprints over.

    :func:`~repro.core.approvals.change_fingerprint` binds an approval to
    ``device|kind|path|old|new`` lines; a scope elevation binds the same
    way, so an approval for one (token, scope) pair cannot be replayed
    for another.
    """

    device: str
    kind: str
    path: str
    old: str
    new: str


class TokenAuthority:
    """Issues and validates one org's capability tokens.

    The sealing key is ``enclave.seal_key("capability-<org>")``: the same
    enclave-measurement derivation the audit chains use, so a tampered
    build (or another org's authority) derives a different key and every
    presented token fails MAC verification.
    """

    def __init__(self, org_id, enclave, clock, audit=None, ttl_s=900.0):
        self.org_id = org_id
        self.clock = clock
        self.audit = audit
        self.ttl_s = ttl_s
        self._key = enclave.seal_key(f"capability-{org_id}")
        self._lock = threading.Lock()
        self._revoked = set()
        self._issued = 0

    # -- minting --------------------------------------------------------------

    def issue(self, subject, scopes, ttl_s=None):
        """Mint a sealed token for ``subject`` carrying exactly ``scopes``."""
        ttl = ttl_s if ttl_s is not None else self.ttl_s
        with self._lock:
            self._issued += 1
            token_id = f"TOKEN-{self.org_id}-{self._issued:04d}"
        now = self.clock.now
        token = CapabilityToken(
            token_id=token_id,
            org_id=self.org_id,
            subject=subject,
            scopes=frozenset(scopes),
            issued_at=now,
            expires_at=now + ttl,
        )
        token = replace(token, mac=self._mac(token))
        _TOKENS_ISSUED.inc()
        self._record(
            actor=subject, command=f"issue {token.summary()}",
            action="tenancy.token.issue", allowed=True,
            outcome=f"ttl {ttl:g}s",
        )
        return token

    def revoke(self, token, reason=""):
        """Invalidate ``token``; any later presentation is a replay."""
        with self._lock:
            self._revoked.add(token.token_id)
        self._record(
            actor=token.subject,
            command=f"revoke {token.token_id}: {reason or 'no reason'}",
            action="tenancy.token.revoke", allowed=True,
            outcome="revoked",
        )

    def _mac(self, token):
        return hmac_module.new(
            self._key, token.canonical(), hashlib.sha256
        ).hexdigest()

    # -- validation (deny by default) ----------------------------------------

    def validate(self, token, scope, surface="frontdoor"):
        """Admit ``token`` for one action needing ``scope`` — or refuse.

        The checks run strictest-first and every failure is terminal:

        1. theft flag (injected) / org binding — a token minted for
           another org is a **tenancy violation**: counted, MAC-audited
           on this (victim) org's chain, and raised as
           :class:`~repro.util.errors.TenantIsolationError`;
        2. MAC verification under this org's sealed key
           (:class:`~repro.util.errors.TokenForgedError`, also a
           violation);
        3. revocation (:class:`~repro.util.errors.TokenReplayError`);
        4. clock-charged expiry — ``now >= expires_at`` denies, so a
           token used *exactly at* its expiry instant fails closed
           (:class:`~repro.util.errors.TokenExpiredError`);
        5. scope membership
           (:class:`~repro.util.errors.CapabilityDeniedError`).

        Returns the token on success (its presentation is audited).
        """
        try:
            _THEFT_FAULT.fire(org=self.org_id, token=token.token_id)
        except TenantIsolationError:
            raise self._violation(
                token, surface,
                f"token {token.token_id} flagged as stolen material",
            )
        if token.org_id != self.org_id:
            raise self._violation(
                token, surface,
                f"token {token.token_id} is bound to org "
                f"{token.org_id!r}, not {self.org_id!r}",
            )
        if not hmac_module.compare_digest(token.mac, self._mac(token)):
            self._deny(
                token, surface, "MAC does not verify under the org key",
                violation=True,
            )
            raise TokenForgedError(
                f"{self.org_id}: token {token.token_id} failed MAC "
                f"verification"
            )
        with self._lock:
            revoked = token.token_id in self._revoked
        replayed = revoked
        try:
            _REPLAY_FAULT.fire(org=self.org_id, token=token.token_id)
        except TokenReplayError:
            replayed = True
        if replayed:
            self._deny(token, surface, "revoked token replayed")
            raise TokenReplayError(
                f"{self.org_id}: token {token.token_id} was revoked; "
                f"replay refused"
            )
        expired = self.clock.now >= token.expires_at
        try:
            _EXPIRED_FAULT.fire(org=self.org_id, token=token.token_id)
        except TokenExpiredError:
            expired = True
        if expired:
            self._deny(
                token, surface,
                f"expired at {token.expires_at:g} (now {self.clock.now:g})",
            )
            raise TokenExpiredError(
                f"{self.org_id}: token {token.token_id} expired at "
                f"{token.expires_at:g} (now {self.clock.now:g})"
            )
        if scope not in token.scopes:
            self._deny(
                token, surface,
                f"scope {scope!r} not granted "
                f"(has [{','.join(sorted(token.scopes))}])",
            )
            raise CapabilityDeniedError(
                f"{self.org_id}: token {token.token_id} lacks scope "
                f"{scope!r}; denied by default"
            )
        self._record(
            actor=token.subject,
            command=f"present {token.token_id} for {scope} at {surface}",
            action="tenancy.token.use", allowed=True, outcome="admitted",
        )
        return token

    # -- break-glass elevation -----------------------------------------------

    def elevate(self, token, scope, coordinator, justification=""):
        """Grant ``scope`` on a fresh token via the org's approvals round.

        The elevation runs the full quorum state machine
        (:class:`~repro.core.approvals.ApprovalCoordinator`): a granted
        round — including one rescued by the configured break-glass actor
        — mints a replacement token carrying the extra scope (the old
        token is revoked, so privilege never accumulates silently on two
        live credentials); a denied round raises
        :class:`~repro.util.errors.CapabilityDeniedError` and nothing is
        issued. Break-glass grants are counted on ``tenancy.break_glass``.
        """
        # The presenting token must itself be sound (org-bound, sealed,
        # unrevoked, unexpired) before any elevation round starts.
        if token.scopes:
            self.validate(token, min(token.scopes), surface="elevate")
        if coordinator is None:
            self._deny(token, "elevate", "no approvals machinery configured")
            raise CapabilityDeniedError(
                f"{self.org_id}: elevation to {scope!r} refused: no "
                f"approvals machinery configured (deny by default)"
            )
        grant = _ElevationGrant(
            device="-", kind="capability", path=f"{self.org_id}:{scope}",
            old=",".join(sorted(token.scopes)), new=scope,
        )
        with obs_trace.span(
            "tenancy.elevate", org=self.org_id, scope=scope,
            subject=token.subject,
        ) as span:
            request = coordinator.require(token.subject, [grant], risk=None)
            coordinator.collect(request)
            span.set(state=request.state, break_glass=request.break_glass)
            if not request.granted:
                self._deny(
                    token, "elevate",
                    f"elevation to {scope!r} denied: {request.reason}",
                )
                raise CapabilityDeniedError(
                    f"{self.org_id}: elevation of {token.token_id} to "
                    f"{scope!r} denied: {request.reason}"
                )
            if request.break_glass:
                _BREAK_GLASS.inc()
            self.revoke(token, reason=f"superseded by elevation to {scope!r}")
            elevated = self.issue(
                token.subject, set(token.scopes) | {scope},
            )
            self._record(
                actor=token.subject,
                command=f"elevate {token.token_id} -> {elevated.token_id} "
                        f"(+{scope}): {justification or 'no justification'}",
                action="tenancy.elevate", allowed=True,
                outcome=(
                    "granted via break-glass override; flagged for review"
                    if request.break_glass else
                    f"granted by {request.reason}"
                ),
            )
        return elevated

    # -- refusal bookkeeping ---------------------------------------------------

    def _violation(self, token, surface, reason):
        """Count + audit a cross-tenant presentation; returns the error."""
        self._deny(token, surface, reason, violation=True)
        return TenantIsolationError(
            f"{self.org_id}: {reason}; cross-tenant access refused "
            f"fail-closed",
            org_id=self.org_id, token_org=token.org_id,
        )

    def _deny(self, token, surface, reason, violation=False):
        _TOKENS_DENIED.inc()
        if violation:
            _VIOLATIONS.inc()
        self._record(
            actor=token.subject,
            command=f"present {token.token_id} at {surface}",
            action=(
                "tenancy.violation" if violation else "tenancy.token.denied"
            ),
            allowed=False,
            outcome=reason,
        )

    def _record(self, actor, command, action, allowed, outcome):
        if self.audit is None:
            return
        self.audit.record(
            actor=actor, device="-", command=command, action=action,
            resource=f"org:{self.org_id}", allowed=allowed, outcome=outcome,
        )


class TenantRegistry:
    """org_id -> tenant lookup; the front door's first fail-closed gate."""

    def __init__(self):
        self._lock = threading.Lock()
        self._tenants = {}

    def add(self, org_id, tenant):
        with self._lock:
            if org_id in self._tenants:
                raise TenancyError(f"org {org_id!r} already registered")
            self._tenants[org_id] = tenant

    def org_ids(self):
        with self._lock:
            return sorted(self._tenants)

    def require(self, org_id):
        """The tenant for ``org_id`` — or a fail-closed refusal.

        Raises:
            TenantRegistryError: the registry crashed mid-admission
                (injected via ``tenancy.registry.crash``); nothing was
                admitted.
            TenantIsolationError: no such org. Counted as a tenancy
                violation — probing for other tenants' org ids is exactly
                the access pattern isolation must refuse.
        """
        _REGISTRY_CRASH_FAULT.fire(org=org_id)
        with self._lock:
            tenant = self._tenants.get(org_id)
        if tenant is None:
            _VIOLATIONS.inc()
            raise TenantIsolationError(
                f"unknown org {org_id!r}; admission refused fail-closed",
                org_id=org_id,
            )
        return tenant
