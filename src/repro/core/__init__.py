"""Heimdall: least privilege for managed network services (paper §3–§4).

The three components of the architecture:

* :mod:`repro.core.privilege` — the Privilege_msp DSL with its JSON
  front-end, the task-driven generator, and the policy translator;
* :mod:`repro.core.twin` — the task-scoped twin network: presentation
  layer, emulation layer, and the reference monitor between them;
* :mod:`repro.core.enforcer` — the policy enforcer: change verifier,
  ordered scheduler, tamper-evident audit trail, simulated SGX enclave.

:mod:`repro.core.heimdall` ties them into the three-step workflow of
Figure 4.
"""

from repro.core.heimdall import Heimdall, TicketOutcome

__all__ = ["Heimdall", "TicketOutcome"]
