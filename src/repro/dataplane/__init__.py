"""Data plane: FIBs, packet forwarding simulation, and reachability analysis."""

from repro.dataplane.fib import Fib
from repro.dataplane.forwarding import Disposition, ForwardingTrace, Hop, trace_flow
from repro.dataplane.plane import DataPlane
from repro.dataplane.reachability import (
    ReachabilityAnalyzer,
    host_flow,
    service_flow,
)

__all__ = [
    "DataPlane",
    "Disposition",
    "Fib",
    "ForwardingTrace",
    "Hop",
    "ReachabilityAnalyzer",
    "host_flow",
    "service_flow",
    "trace_flow",
]
