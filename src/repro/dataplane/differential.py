"""Differential reachability: what a configuration change actually alters.

Batfish's ``differentialReachability`` for this substrate: compare two
data-plane snapshots over a set of probe flows and report every flow whose
fate changed. The policy enforcer attaches this to its decision so the
customer sees a change set's *blast radius*, not just a policy verdict —
including collateral effects on flows no policy happens to cover.
"""

from dataclasses import dataclass, field

from repro.dataplane.forwarding import trace_flow
from repro.net.flow import Flow


@dataclass(frozen=True)
class FlowDelta:
    """One flow whose fate differs between the two snapshots."""

    flow: Flow
    before_disposition: str
    after_disposition: str
    before_path: tuple
    after_path: tuple

    @property
    def newly_delivered(self):
        return (
            self.after_disposition == "delivered"
            and self.before_disposition != "delivered"
        )

    @property
    def newly_broken(self):
        return (
            self.before_disposition == "delivered"
            and self.after_disposition != "delivered"
        )

    @property
    def rerouted(self):
        """Same fate, different path (still a risk signal for audits)."""
        return (
            self.before_disposition == self.after_disposition
            and self.before_path != self.after_path
        )

    def __str__(self):
        return (
            f"{self.flow}: {self.before_disposition} -> "
            f"{self.after_disposition}"
        )


@dataclass
class ReachabilityDiff:
    """All flow deltas between two snapshots."""

    deltas: list = field(default_factory=list)
    probed: int = 0

    @property
    def newly_delivered(self):
        return [d for d in self.deltas if d.newly_delivered]

    @property
    def newly_broken(self):
        return [d for d in self.deltas if d.newly_broken]

    @property
    def rerouted(self):
        return [d for d in self.deltas if d.rerouted]

    @property
    def unchanged(self):
        return self.probed - len(self.deltas)

    def summary(self):
        return (
            f"{self.probed} flows probed: {len(self.newly_delivered)} newly "
            f"delivered, {len(self.newly_broken)} newly broken, "
            f"{len(self.rerouted)} rerouted, {self.unchanged} unchanged"
        )


def default_probe_flows(network, protocol="icmp"):
    """All ordered host-pair representative flows (the standard probe set)."""
    hosts = network.hosts()
    flows = []
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            flows.append(
                (src, Flow(
                    src_ip=network.host_address(src),
                    dst_ip=network.host_address(dst),
                    protocol=protocol,
                ))
            )
    return flows


def diff_reachability(before, after, probe_flows=None):
    """Compare two data planes over ``probe_flows``.

    ``probe_flows`` is a list of ``(start_device, Flow)`` pairs; by default,
    all ordered host pairs of the *after* network. Both snapshots must be
    over the same device names (hosts may differ in config, not identity).
    """
    if probe_flows is None:
        probe_flows = default_probe_flows(after.network)
    diff = ReachabilityDiff(probed=len(probe_flows))
    for start, flow in probe_flows:
        trace_before = trace_flow(before, flow, start_device=start)
        trace_after = trace_flow(after, flow, start_device=start)
        if (
            trace_before.disposition == trace_after.disposition
            and trace_before.path() == trace_after.path()
        ):
            continue
        diff.deltas.append(
            FlowDelta(
                flow=flow,
                before_disposition=trace_before.disposition.value,
                after_disposition=trace_after.disposition.value,
                before_path=tuple(trace_before.path()),
                after_path=tuple(trace_after.path()),
            )
        )
    return diff
