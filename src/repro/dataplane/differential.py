"""Differential reachability: what a configuration change actually alters.

Batfish's ``differentialReachability`` for this substrate: compare two
data-plane snapshots over a set of probe flows and report every flow whose
fate changed. The policy enforcer attaches this to its decision so the
customer sees a change set's *blast radius*, not just a policy verdict —
including collateral effects on flows no policy happens to cover.

When both snapshots came through the compile cache with shared artifacts
(the enforcer's incremental path), the diff exploits locality: forwarding
is a per-hop function of the visited devices' configs/FIBs and the
traversed segments' endpoints, so a before-trace whose path avoids every
config change and whose destination resolves to the same route at every
hop is provably identical on the after plane and is reused instead of
re-traced. See :func:`trace_unaffected` for the exact rule and
:func:`changed_configs` for when the optimization is sound.
"""

from dataclasses import dataclass, field

from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.net.flow import Flow


@dataclass(frozen=True)
class FlowDelta:
    """One flow whose fate differs between the two snapshots."""

    flow: Flow
    before_disposition: str
    after_disposition: str
    before_path: tuple
    after_path: tuple

    @property
    def newly_delivered(self):
        return (
            self.after_disposition == "delivered"
            and self.before_disposition != "delivered"
        )

    @property
    def newly_broken(self):
        return (
            self.before_disposition == "delivered"
            and self.after_disposition != "delivered"
        )

    @property
    def rerouted(self):
        """Same fate, different path (still a risk signal for audits)."""
        return (
            self.before_disposition == self.after_disposition
            and self.before_path != self.after_path
        )

    def __str__(self):
        return (
            f"{self.flow}: {self.before_disposition} -> "
            f"{self.after_disposition}"
        )


@dataclass
class ReachabilityDiff:
    """All flow deltas between two snapshots."""

    deltas: list = field(default_factory=list)
    probed: int = 0

    @property
    def newly_delivered(self):
        return [d for d in self.deltas if d.newly_delivered]

    @property
    def newly_broken(self):
        return [d for d in self.deltas if d.newly_broken]

    @property
    def rerouted(self):
        return [d for d in self.deltas if d.rerouted]

    @property
    def unchanged(self):
        return self.probed - len(self.deltas)

    def summary(self):
        return (
            f"{self.probed} flows probed: {len(self.newly_delivered)} newly "
            f"delivered, {len(self.newly_broken)} newly broken, "
            f"{len(self.rerouted)} rerouted, {self.unchanged} unchanged"
        )


def default_probe_flows(network, protocol="icmp"):
    """All ordered host-pair representative flows (the standard probe set)."""
    hosts = network.hosts()
    addresses = {host: network.host_address(host) for host in hosts}
    flows = []
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            flows.append(
                (src, Flow(
                    src_ip=addresses[src],
                    dst_ip=addresses[dst],
                    protocol=protocol,
                ))
            )
    return flows


def _forwarding_view(config):
    """The slice of one config the forwarding walk actually reads.

    :func:`~repro.dataplane.forwarding.trace_flow` consults a device's
    config only through its ACLs (ingress/egress ``permits``), its interface
    addresses (``owns_address`` delivery checks, next-hop resolution), and
    interface liveness/routed-ness. Routing stanzas (OSPF/BGP processes,
    static routes) influence forwarding exclusively through the compiled
    FIBs, which :class:`TraceCarryover` compares separately per flow.
    """
    return (
        {
            name: (
                iface.address, iface.shutdown, iface.is_routed,
                iface.access_group_in, iface.access_group_out,
            )
            for name, iface in config.interfaces.items()
        },
        config.acls,
    )


def changed_configs(before, after):
    """Devices whose *forwarding-relevant* config differs between two planes.

    Returns ``None`` (meaning "assume everything changed") unless the
    comparison is provably sound: both planes must carry per-device config
    fingerprints (i.e. came through the compile builder) and cover the same
    device names. Segment-structure changes are handled per traversed
    segment by :class:`TraceCarryover`, not here.

    A device whose config fingerprint changed but whose
    :func:`_forwarding_view` did not (e.g. an edited OSPF ``network``
    statement) is *not* reported: its forwarding behaviour can only change
    through its FIB, and :func:`trace_unaffected` compares per-flow FIB
    lookups on every non-shared FIB along the path anyway.
    """
    before_fps = before.device_fingerprints
    after_fps = after.device_fingerprints
    if (
        before_fps is None
        or after_fps is None
        or set(before_fps) != set(after_fps)
    ):
        return None
    changed = set()
    for name, fp in after_fps.items():
        if before_fps[name] == fp:
            continue
        if _forwarding_view(before.network.config(name)) != _forwarding_view(
            after.network.config(name)
        ):
            changed.add(name)
    return changed


class TraceCarryover:
    """Memoized per-flow trace carry-over decisions between two planes.

    Forwarding is local: each hop's behaviour is a function of the visited
    device's config, its FIB lookup for the flow's destination, and the
    configs of the endpoints on the traversed egress segment. So a
    before-trace carries over to the after plane verbatim when, along its
    recorded path:

    * no visited device's config changed (ACLs, addresses, shutdown — all
      covered by the config fingerprint);
    * every visited device's FIB either *is* the identity-shared baseline
      object or resolves the flow's destination to an equal route — a
      network-wide routing change only perturbs flows whose destination
      lookup actually changed;
    * every traversed segment has the same endpoint set on both planes
      (identity-shared tables satisfy this trivially; recomputed tables are
      compared structurally per segment, so an L2 change invalidates only
      the broadcast domains it actually rewired), and none of those
      endpoints' configs changed — next-hop resolution reads every
      endpoint's config, so a changed device merely sitting on a traversed
      segment can alter the outcome (e.g. by acquiring a duplicate next-hop
      address).

    Per-(device, destination) lookup comparisons and per-segment endpoint
    checks are memoized: thousands of traces share a handful of distinct
    destinations and traversed segments.
    """

    def __init__(self, before, after, config_changed):
        self.before = before
        self.after = after
        self.config_changed = config_changed
        self._lookup_same = {}  # (device, int(dst_ip)) -> bool
        self._segment_ok = {}  # (device, out_interface) -> bool

    def _same_lookup(self, device, dst_ip, dst_int):
        key = (device, dst_int)
        same = self._lookup_same.get(key)
        if same is None:
            before_fib = self.before.fib(device)
            after_fib = self.after.fib(device)
            same = before_fib is after_fib or (
                before_fib.lookup(dst_ip) == after_fib.lookup(dst_ip)
            )
            self._lookup_same[key] = same
        return same

    def _segment_clean(self, device, out_interface):
        key = (device, out_interface)
        clean = self._segment_ok.get(key)
        if clean is None:
            segment = self.before.segments.segment_of(device, out_interface)
            if segment is None:
                clean = False
            else:
                if self.before.segments is self.after.segments:
                    same_domain = True
                else:
                    after_segment = self.after.segments.segment_of(
                        device, out_interface
                    )
                    same_domain = (
                        after_segment is not None
                        and after_segment.endpoints == segment.endpoints
                    )
                clean = same_domain and not any(
                    endpoint_device in self.config_changed
                    for endpoint_device, _ in segment.endpoints
                )
            self._segment_ok[key] = clean
        return clean

    def unaffected(self, trace):
        """Whether ``trace`` is provably identical on the after plane."""
        dst_ip = trace.flow.dst_ip
        dst_int = int(dst_ip)
        for hop in trace.hops:
            if hop.device in self.config_changed:
                return False
            if not self._same_lookup(hop.device, dst_ip, dst_int):
                return False
            if hop.out_interface is not None and not self._segment_clean(
                hop.device, hop.out_interface
            ):
                return False
        return True


def trace_unaffected(trace, before, after, config_changed):
    """One-shot :meth:`TraceCarryover.unaffected` (tests, ad-hoc queries)."""
    return TraceCarryover(before, after, config_changed).unaffected(trace)


def seed_unaffected_traces(before, after):
    """Copy provably-unchanged cached traces from ``before`` into ``after``.

    For every trace in ``before``'s cache that :func:`trace_unaffected`
    proves identical, install the same trace object in ``after``'s cache so
    the candidate-side verifier and diff never re-trace it. Traces keyed
    with ``start=None`` additionally require that the source-IP owner
    lookup resolves to the same device on both networks (that scan is
    global, not per-path).

    Returns the number of traces seeded; 0 when the planes are not
    comparable (see :func:`changed_configs`).
    """
    config_changed = changed_configs(before, after)
    if config_changed is None:
        return 0
    carryover = TraceCarryover(before, after, config_changed)
    # Owner stability for start=None keys: devices outside config_changed
    # have identical addresses, so the global owner scan can only diverge at
    # a changed device — provided both networks enumerate devices in the
    # same order (first owner wins on duplicate addresses).
    same_order = list(before.network.configs) == list(after.network.configs)
    owner_stable = {}

    def _owner_stable(src_ip):
        stable = owner_stable.get(src_ip)
        if stable is None:
            stable = same_order and all(
                before.network.config(name).owns_address(src_ip)
                == after.network.config(name).owns_address(src_ip)
                for name in config_changed
            )
            owner_stable[src_ip] = stable
        return stable

    seeded = 0
    with before.trace_lock:
        entries = list(before.trace_cache.items())
    with after.trace_lock:
        for (flow, start), trace in entries:
            if (flow, start) in after.trace_cache:
                continue
            if not carryover.unaffected(trace):
                continue
            if start is None and not _owner_stable(flow.src_ip):
                continue
            after.trace_cache[(flow, start)] = trace
            seeded += 1
    return seeded


def diff_reachability(before, after, probe_flows=None):
    """Compare two data planes over ``probe_flows``.

    Args:
        before: the production data-plane snapshot.
        after: the candidate snapshot (same device names; hosts may differ
            in config, not identity).
        probe_flows: list of ``(start_device, Flow)`` pairs; by default,
            all ordered host pairs of the *after* network.

    Returns:
        A :class:`ReachabilityDiff` listing every flow whose disposition or
        path differs — the change set's blast radius.

    Traces go through each plane's :class:`ReachabilityAnalyzer` cache, so
    flows the policy verifier already traced are not re-traced here. When
    the planes share compile artifacts, after-traces are skipped entirely
    for flows whose before-path provably avoids every changed device.
    """
    if probe_flows is None:
        probe_flows = default_probe_flows(after.network)
    analyzer_before = ReachabilityAnalyzer(before)
    analyzer_after = ReachabilityAnalyzer(after)
    config_changed = changed_configs(before, after)
    carryover = (
        TraceCarryover(before, after, config_changed)
        if config_changed is not None
        else None
    )
    diff = ReachabilityDiff(probed=len(probe_flows))
    for start, flow in probe_flows:
        trace_before = analyzer_before.trace(flow, start_device=start)
        if (
            carryover is not None
            and start is not None
            and carryover.unaffected(trace_before)
        ):
            continue  # provably identical on the after plane
        trace_after = analyzer_after.trace(flow, start_device=start)
        if (
            trace_before.disposition == trace_after.disposition
            and trace_before.path() == trace_after.path()
        ):
            continue
        diff.deltas.append(
            FlowDelta(
                flow=flow,
                before_disposition=trace_before.disposition.value,
                after_disposition=trace_after.disposition.value,
                before_path=tuple(trace_before.path()),
                after_path=tuple(trace_after.path()),
            )
        )
    return diff
