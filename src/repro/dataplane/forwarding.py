"""Packet forwarding simulation with ACL enforcement and loop detection.

:func:`trace_flow` walks one concrete :class:`~repro.net.flow.Flow` through
the data plane hop by hop, recording the interface, route, and ACL decision
at every device — the simulated equivalent of ``traceroute`` plus the
explanations Batfish gives for why a packet was dropped.
"""

import enum
from dataclasses import dataclass, field

_MAX_HOPS = 64


class Disposition(enum.Enum):
    """Terminal fate of a traced flow."""

    DELIVERED = "delivered"
    DENIED_IN = "denied-in"  # dropped by an ingress ACL
    DENIED_OUT = "denied-out"  # dropped by an egress ACL
    NO_ROUTE = "no-route"
    ARP_FAILURE = "arp-failure"  # next hop not alive on the egress segment
    LOOP = "loop"
    NOT_FORWARDED = "not-forwarded"  # arrived at a host that is not the target
    SOURCE_DOWN = "source-down"

    @property
    def success(self):
        return self is Disposition.DELIVERED


@dataclass
class Hop:
    """One device the flow visited."""

    device: str
    in_interface: str = None
    out_interface: str = None
    route: object = None  # the Route used to leave this device, if any
    note: str = ""


@dataclass
class ForwardingTrace:
    """The full record of one traced flow."""

    flow: object
    disposition: Disposition = None
    hops: list = field(default_factory=list)

    @property
    def success(self):
        return self.disposition is not None and self.disposition.success

    def path(self):
        """Device names visited, in order."""
        return [hop.device for hop in self.hops]

    @property
    def last_device(self):
        return self.hops[-1].device if self.hops else None

    def __str__(self):
        arrows = " -> ".join(self.path()) or "(nowhere)"
        return f"{self.flow}: {arrows} [{self.disposition.value}]"


def trace_flow(dataplane, flow, start_device=None):
    """Trace ``flow`` from ``start_device`` (default: the owner of its source IP)."""
    network = dataplane.network
    if start_device is None:
        start_device = network.device_owning_ip(flow.src_ip)
        if start_device is None:
            trace = ForwardingTrace(flow=flow)
            trace.disposition = Disposition.SOURCE_DOWN
            return trace
    return _Walker(dataplane, flow).walk(start_device)


class _Walker:
    """Stateful walk of one flow through the data plane."""

    def __init__(self, dataplane, flow):
        self.dataplane = dataplane
        self.network = dataplane.network
        self.flow = flow
        self.trace = ForwardingTrace(flow=flow)
        self._visited = set()

    def walk(self, device, in_interface=None):
        while True:
            hop = Hop(device=device, in_interface=in_interface)
            self.trace.hops.append(hop)

            if device in self._visited:
                return self._finish(Disposition.LOOP, hop, "revisited device")
            self._visited.add(device)

            config = self.network.config(device)

            if in_interface is not None and not self._permitted(
                config, in_interface, "in", hop
            ):
                return self._finish(Disposition.DENIED_IN, hop)

            if config.owns_address(self.flow.dst_ip):
                return self._finish(Disposition.DELIVERED, hop)

            if device in self.network.hosts() and in_interface is not None:
                return self._finish(
                    Disposition.NOT_FORWARDED, hop, "hosts do not forward"
                )

            route = self.dataplane.fib(device).lookup(self.flow.dst_ip)
            if route is None:
                return self._finish(Disposition.NO_ROUTE, hop)
            hop.route = route
            hop.out_interface = route.out_interface

            if not self._permitted(config, route.out_interface, "out", hop):
                return self._finish(Disposition.DENIED_OUT, hop)

            target_ip = route.next_hop if route.next_hop is not None else self.flow.dst_ip
            next_endpoint = self.dataplane.resolve_next_hop(
                device, route.out_interface, target_ip
            )
            if next_endpoint is None:
                return self._finish(
                    Disposition.ARP_FAILURE, hop, f"no endpoint owns {target_ip}"
                )

            if len(self.trace.hops) >= _MAX_HOPS:
                return self._finish(Disposition.LOOP, hop, "hop limit")

            device, in_interface = next_endpoint

    def _permitted(self, config, iface_name, direction, hop):
        """Apply the interface's ACL in ``direction``; absent ACLs permit."""
        iface = config.interfaces.get(iface_name)
        if iface is None:
            return True
        acl_name = (
            iface.access_group_in if direction == "in" else iface.access_group_out
        )
        if acl_name is None or acl_name not in config.acls:
            # IOS treats a reference to a missing ACL as permit-all.
            return True
        acl = config.acls[acl_name]
        permitted = acl.permits(self.flow)
        if not permitted:
            hop.note = f"acl {acl_name} {direction} denied"
        return permitted

    def _finish(self, disposition, hop, note=""):
        if note:
            hop.note = note if not hop.note else f"{hop.note}; {note}"
        self.trace.disposition = disposition
        return self.trace
