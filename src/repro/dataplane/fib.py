"""Forwarding information base with longest-prefix-match lookup."""


class Fib:
    """An installed route table for one device.

    Routes are pre-sorted by descending prefix length so lookup is a linear
    scan that returns the first containing prefix — simple, obviously correct,
    and fast enough for networks of tens of devices. (A compressed trie would
    be the production choice for Internet-scale tables.)
    """

    def __init__(self, routes=()):
        self._routes = sorted(
            routes, key=lambda r: (-r.prefix.prefixlen, str(r.prefix))
        )

    def lookup(self, dst_ip):
        """The longest-prefix-match route for ``dst_ip``, or ``None``."""
        for route in self._routes:
            if dst_ip in route.prefix:
                return route
        return None

    def routes(self):
        """All installed routes, most-specific first."""
        return list(self._routes)

    def route_for_prefix(self, prefix):
        """The installed route for exactly ``prefix``, or ``None``."""
        for route in self._routes:
            if route.prefix == prefix:
                return route
        return None

    def __len__(self):
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)
