"""Forwarding information base with longest-prefix-match lookup."""

from repro.obs import metrics as obs_metrics
from repro.obs.state import STATE as _OBS

# lookup() is the hottest function in the repo (every hop of every trace),
# so the counters are guarded at the call site on one attribute read
# instead of paying a method call per lookup while disabled.
_LOOKUPS = obs_metrics.counter(
    "fib.lookups", unit="lookups",
    help="LPM lookups served (every forwarding hop performs one)",
)
_LOOKUP_MISSES = obs_metrics.counter(
    "fib.lookup.misses", unit="lookups",
    help="LPM lookups with no matching route (traffic dropped as no-route)",
)


class Fib:
    """An installed route table for one device.

    Lookup uses a prefix-length-bucketed exact-match table: one dict per
    distinct prefix length, keyed by the masked integer network address, and
    scanned longest-prefix first. That makes a lookup O(#distinct prefix
    lengths) dict probes instead of a linear scan over every route — the
    same structure hardware LPM and software routers use before graduating
    to a compressed trie.

    Tie-break semantics are identical to the historical linear scan: routes
    are pre-sorted by ``(-prefixlen, str(prefix))`` and the *first* route in
    that order wins for each prefix, so duplicate prefixes resolve exactly
    as before.
    """

    def __init__(self, routes=()):
        self._routes = sorted(
            routes, key=lambda r: (-r.prefix.prefixlen, str(r.prefix))
        )
        # One exact-match bucket per distinct prefix length, longest first.
        # setdefault over the sorted list keeps first-route-wins tie-breaks.
        by_len = {}
        by_prefix = {}
        for route in self._routes:
            prefix = route.prefix
            bucket = by_len.setdefault(prefix.prefixlen, {})
            bucket.setdefault(int(prefix.network_address), route)
            by_prefix.setdefault(prefix, route)
        self._buckets = [
            (_mask(plen), table)
            for plen, table in sorted(by_len.items(), reverse=True)
        ]
        self._by_prefix = by_prefix

    @classmethod
    def _from_canonical(cls, ordered):
        """Construct from ``[(key, route), ...]`` already in canonical order.

        Fast path for the sharded compiler (:mod:`repro.control.shard`),
        which selects one winner per prefix and sorts by a precomputed
        ``(-prefixlen, str(prefix))`` table — re-deriving both here would
        redo work the shard already paid for once per *unique* prefix
        instead of once per installed route. ``key`` is the route's
        ``(int(network_address), prefixlen)`` pair; keys must be unique and
        ordered exactly as ``__init__`` would sort the routes, which keeps
        the two constructors behaviourally indistinguishable (asserted by
        the shard-vs-monolithic equivalence tests). ``_by_prefix`` is built
        lazily on the first exact-prefix query — it is off the forwarding
        hot path entirely.
        """
        fib = cls.__new__(cls)
        fib._routes = [route for _key, route in ordered]
        by_len = {}
        for (address, plen), route in ordered:
            by_len.setdefault(plen, {})[address] = route
        fib._buckets = [
            (_mask(plen), table)
            for plen, table in sorted(by_len.items(), reverse=True)
        ]
        fib._by_prefix = None
        return fib

    def lookup(self, dst_ip):
        """The longest-prefix-match route for ``dst_ip``, or ``None``."""
        if _OBS.enabled:
            _LOOKUPS.inc()
        addr = int(dst_ip)
        for mask, table in self._buckets:
            route = table.get(addr & mask)
            if route is not None:
                return route
        if _OBS.enabled:
            _LOOKUP_MISSES.inc()
        return None

    def routes(self):
        """All installed routes, most-specific first."""
        return list(self._routes)

    def route_for_prefix(self, prefix):
        """The installed route for exactly ``prefix``, or ``None``."""
        if self._by_prefix is None:
            by_prefix = {}
            for route in self._routes:
                by_prefix.setdefault(route.prefix, route)
            self._by_prefix = by_prefix
        return self._by_prefix.get(prefix)

    def __len__(self):
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes)


def _mask(prefixlen):
    """The IPv4 netmask for ``prefixlen`` as an int."""
    return (0xFFFFFFFF << (32 - prefixlen)) & 0xFFFFFFFF
