"""The compiled data plane: per-device FIBs plus L2 segment structure."""

from repro.util.errors import TopologyError


class DataPlane:
    """Everything needed to forward a packet through the network.

    Produced by :func:`repro.control.builder.build_dataplane`; consumed by
    :mod:`repro.dataplane.forwarding` and the policy verifier. The data plane
    is a snapshot — recompute it after configs change.
    """

    def __init__(self, network, segments, fibs, ospf, bgp=None):
        self.network = network
        self.segments = segments
        self._fibs = fibs
        self.ospf = ospf
        self.bgp = bgp

    def fib(self, device):
        """The FIB of ``device`` (empty for switches)."""
        try:
            return self._fibs[device]
        except KeyError:
            raise TopologyError(f"no FIB for device {device!r}") from None

    def resolve_next_hop(self, device, out_interface, target_ip):
        """The (device, interface) owning ``target_ip`` on the egress segment.

        ``target_ip`` is the route's next hop, or the destination itself for
        connected routes. Returns ``None`` when no live endpoint on the
        segment owns the address (dead next hop / host down at L2).
        """
        segment = self.segments.segment_of(device, out_interface)
        if segment is None:
            return None
        for other_device, other_iface in segment.endpoints:
            if (other_device, other_iface) == (device, out_interface):
                continue
            iface_cfg = self.network.config(other_device).interfaces.get(other_iface)
            if iface_cfg is None or not iface_cfg.is_routed or iface_cfg.shutdown:
                continue
            if iface_cfg.address.ip == target_ip:
                return (other_device, other_iface)
        return None
