"""The compiled data plane: per-device FIBs plus L2 segment structure."""

import threading

from repro.util.errors import TopologyError


class DataPlane:
    """Everything needed to forward a packet through the network.

    Produced by :func:`repro.control.builder.build_dataplane`; consumed by
    :mod:`repro.dataplane.forwarding` and the policy verifier. The data plane
    is a snapshot — recompute it after configs change.

    When built through the compile cache, ``artifacts`` carries the shared
    :class:`~repro.control.cache.CompiledDataplane` this plane was rebound
    from: its fingerprints let differential analysis identify exactly which
    devices changed between two planes, and its trace cache is shared by
    every plane with the same content fingerprint so traces computed once
    are reused across verifier runs.
    """

    def __init__(self, network, segments, fibs, ospf, bgp=None, artifacts=None):
        self.network = network
        self.segments = segments
        self._fibs = fibs
        self.ospf = ospf
        self.bgp = bgp
        self.artifacts = artifacts
        if artifacts is not None:
            self.trace_cache = artifacts.trace_cache
            self.trace_lock = artifacts.trace_lock
            self.owner_cache = artifacts.owner_cache
        else:
            self.trace_cache = {}
            self.trace_lock = threading.Lock()
            self.owner_cache = {}
        # device -> bool memo for binding_intact(); per plane, so one
        # verification pass re-hashes each device at most once. Benign
        # lock-free races: the value is deterministic for this plane.
        self._binding_memo = {}
        self._binding_asserted = False

    def assert_binding_intact(self):
        """Caller's promise: no in-place config mutation while this plane lives.

        Skips the re-hash drift guard in :meth:`binding_intact` for the rest
        of this plane's lifetime. Sound only for callers that own both the
        plane and its network and will not mutate any config in place until
        they drop the plane — the enforcer's verify pipeline qualifies (it
        builds the candidate itself and the sessions layer serializes
        production mutation against verification), an interactive twin
        console does not. Like the ``changed_devices`` assertion of
        :func:`~repro.control.cache.derived_fingerprint`, a false promise
        silently corrupts shared state, so assert only from code that
        constructs its snapshots itself.
        """
        self._binding_asserted = True

    @property
    def fingerprint(self):
        """Snapshot content hash, or ``None`` for hand-assembled planes."""
        return self.artifacts.fingerprint if self.artifacts is not None else None

    @property
    def device_fingerprints(self):
        """Per-device config hashes, or ``None`` for hand-assembled planes."""
        if self.artifacts is None:
            return None
        return self.artifacts.device_fingerprints

    def binding_intact(self, devices):
        """Whether ``devices``' live configs still match this plane's build.

        A compile-cache hit rebinds shared artifacts to the calling network
        by fingerprint equality *at rebind time*; a caller that later
        mutates configs in place leaves the plane stale. Consumers that
        publish results into the **shared** trace cache (the reachability
        analyzer) call this first so a drifted plane can never poison the
        cache for an unrelated session. Hand-assembled planes (no
        artifacts) trivially pass — their caches are private — as do planes
        whose owner promised no in-place mutation via
        :meth:`assert_binding_intact`.
        """
        if self.artifacts is None or self._binding_asserted:
            return True
        expected = self.artifacts.device_fingerprints
        if expected is None:
            # Unfingerprinted artifacts (a cache-bypassing sharded compile)
            # are never shared through the compile cache, so their trace
            # store is as private as a hand-assembled plane's.
            return True
        from repro.control.cache import config_fingerprint

        for device in devices:
            clean = self._binding_memo.get(device)
            if clean is None:
                config = self.network.configs.get(device)
                clean = (
                    config is not None
                    and config_fingerprint(config) == expected.get(device)
                )
                self._binding_memo[device] = clean
            if not clean:
                return False
        return True

    def fib(self, device):
        """The FIB of ``device`` (empty for switches)."""
        try:
            return self._fibs[device]
        except KeyError:
            raise TopologyError(f"no FIB for device {device!r}") from None

    def resolve_next_hop(self, device, out_interface, target_ip):
        """The (device, interface) owning ``target_ip`` on the egress segment.

        ``target_ip`` is the route's next hop, or the destination itself for
        connected routes. Returns ``None`` when no live endpoint on the
        segment owns the address (dead next hop / host down at L2).
        """
        segment = self.segments.segment_of(device, out_interface)
        if segment is None:
            return None
        for other_device, other_iface in segment.endpoints:
            if (other_device, other_iface) == (device, out_interface):
                continue
            iface_cfg = self.network.config(other_device).interfaces.get(other_iface)
            if iface_cfg is None or not iface_cfg.is_routed or iface_cfg.shutdown:
                continue
            if iface_cfg.address.ip == target_ip:
                return (other_device, other_iface)
        return None
