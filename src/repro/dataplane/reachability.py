"""Reachability queries over a compiled data plane."""

from repro.dataplane.forwarding import trace_flow
from repro.net.flow import Flow


def host_flow(network, src_host, dst_host, protocol="icmp"):
    """A representative flow between two hosts' primary addresses."""
    return Flow(
        src_ip=network.host_address(src_host),
        dst_ip=network.host_address(dst_host),
        protocol=protocol,
    )


def service_flow(network, src_host, dst_host, dst_port, protocol="tcp"):
    """A flow to a service port on ``dst_host`` (ephemeral source port)."""
    return Flow(
        src_ip=network.host_address(src_host),
        dst_ip=network.host_address(dst_host),
        protocol=protocol,
        src_port=40000,
        dst_port=dst_port,
    )


class ReachabilityAnalyzer:
    """Pairwise reachability over one data-plane snapshot.

    Traces are cached per (flow, start) — the verifier asks about the same
    flows repeatedly while checking a policy set.
    """

    def __init__(self, dataplane):
        self.dataplane = dataplane
        self._cache = {}

    def trace(self, flow, start_device=None):
        """Cached :func:`trace_flow`."""
        key = (flow, start_device)
        if key not in self._cache:
            self._cache[key] = trace_flow(self.dataplane, flow, start_device)
        return self._cache[key]

    def reachable(self, flow, start_device=None):
        """Whether the flow is delivered."""
        return self.trace(flow, start_device).success

    def hosts_reachable(self, src_host, dst_host, protocol="icmp"):
        """Whether ``src_host`` can reach ``dst_host``'s primary address."""
        network = self.dataplane.network
        flow = host_flow(network, src_host, dst_host, protocol)
        return self.reachable(flow, start_device=src_host)

    def reachability_matrix(self, protocol="icmp"):
        """(src, dst) -> bool over all ordered host pairs."""
        hosts = self.dataplane.network.hosts()
        return {
            (src, dst): self.hosts_reachable(src, dst, protocol)
            for src in hosts
            for dst in hosts
            if src != dst
        }

    def forwarding_path(self, flow, start_device=None):
        """Devices visited by ``flow`` (regardless of final disposition)."""
        return self.trace(flow, start_device).path()
