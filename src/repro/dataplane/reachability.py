"""Reachability queries over a compiled data plane."""

import threading

from repro.dataplane.forwarding import trace_flow
from repro.net.flow import Flow
from repro.obs import metrics as obs_metrics

_TRACE_DRIFT = obs_metrics.counter(
    "dataplane.trace.drift", unit="traces",
    help="traces computed on a drifted rebound plane and kept out of the "
         "shared trace cache",
)

_UNRESOLVED = object()  # owner_cache sentinel: "not looked up yet" vs None


def host_flow(network, src_host, dst_host, protocol="icmp"):
    """A representative flow between two hosts' primary addresses."""
    return Flow(
        src_ip=network.host_address(src_host),
        dst_ip=network.host_address(dst_host),
        protocol=protocol,
    )


def service_flow(network, src_host, dst_host, dst_port, protocol="tcp"):
    """A flow to a service port on ``dst_host`` (ephemeral source port)."""
    return Flow(
        src_ip=network.host_address(src_host),
        dst_ip=network.host_address(dst_host),
        protocol=protocol,
        src_port=40000,
        dst_port=dst_port,
    )


class ReachabilityAnalyzer:
    """Pairwise reachability over one data-plane snapshot.

    Traces are cached per (flow, start) — the verifier asks about the same
    flows repeatedly while checking a policy set. When the data plane came
    through the compile cache, the cache dict is *shared* with the plane
    (and so with every other analyzer over an equal-fingerprint plane), so
    traces survive across verifier runs and across the enforcer's
    verify/diff pipeline.

    Thread-safe: concurrent ``trace`` calls may redundantly compute the same
    trace (forwarding is deterministic, so both results are equal) but the
    cache itself is only mutated under a lock, and the first-installed trace
    is the one every caller observes thereafter.

    When the cache is *shared* (the plane was rebound from compile-cache
    artifacts), a trace is only installed after
    :meth:`~repro.dataplane.plane.DataPlane.binding_intact` confirms the
    configs along its path still match the fingerprints the artifacts were
    compiled from. Without that check, a session mutating its configs in
    place (a production push, an in-place injection) would trace on the
    stale plane and poison the cache entry every other equal-fingerprint
    session reads. Drifted traces are still returned to the caller — stale
    planes were always undefined behaviour — they just never become shared
    state (counted by ``dataplane.trace.drift``).
    """

    def __init__(self, dataplane):
        self.dataplane = dataplane
        self._cache = getattr(dataplane, "trace_cache", None)
        self._shared = (
            self._cache is not None
            and getattr(dataplane, "artifacts", None) is not None
        )
        if self._cache is None:
            self._cache = {}
        self._lock = getattr(dataplane, "trace_lock", None)
        if self._lock is None:
            self._lock = threading.Lock()
        self._owners = getattr(dataplane, "owner_cache", None)
        if self._owners is None:
            self._owners = {}

    def _owner(self, src_ip):
        """Memoized ``device_owning_ip`` (the scan is global and pricey)."""
        owner = self._owners.get(src_ip, _UNRESOLVED)
        if owner is _UNRESOLVED:
            owner = self.dataplane.network.device_owning_ip(src_ip)
            self._owners[src_ip] = owner
        return owner

    def trace(self, flow, start_device=None):
        """Cached :func:`trace_flow`."""
        key = (flow, start_device)
        trace = self._cache.get(key)
        if trace is None:
            resolved = start_device
            if resolved is None:
                # Resolve the implicit start here so repeated source IPs
                # don't rescan the network; trace_flow falls back to its
                # own no-owner handling when the lookup comes up empty.
                resolved = self._owner(flow.src_ip)
            trace = trace_flow(self.dataplane, flow, resolved)
            if self._shared and not self.dataplane.binding_intact(
                set(trace.path())
            ):
                _TRACE_DRIFT.inc()
                return trace
            with self._lock:
                trace = self._cache.setdefault(key, trace)
        return trace

    def reachable(self, flow, start_device=None):
        """Whether the flow is delivered."""
        return self.trace(flow, start_device).success

    def hosts_reachable(self, src_host, dst_host, protocol="icmp"):
        """Whether ``src_host`` can reach ``dst_host``'s primary address."""
        network = self.dataplane.network
        flow = host_flow(network, src_host, dst_host, protocol)
        return self.reachable(flow, start_device=src_host)

    def reachability_matrix(self, protocol="icmp"):
        """(src, dst) -> bool over all ordered host pairs."""
        network = self.dataplane.network
        hosts = network.hosts()
        addresses = {host: network.host_address(host) for host in hosts}
        matrix = {}
        for src in hosts:
            src_ip = addresses[src]
            for dst in hosts:
                if src == dst:
                    continue
                flow = Flow(src_ip=src_ip, dst_ip=addresses[dst], protocol=protocol)
                matrix[(src, dst)] = self.reachable(flow, start_device=src)
        return matrix

    def forwarding_path(self, flow, start_device=None):
        """Devices visited by ``flow`` (regardless of final disposition)."""
        return self.trace(flow, start_device).path()
